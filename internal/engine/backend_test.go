package engine

import (
	"fmt"
	"path/filepath"
	"testing"
)

// fillTable inserts n rows (id, payload) into a fresh table named name.
func fillTable(t *testing.T, db *DB, name string, n int) *Table {
	t.Helper()
	tb, err := db.CreateTable(name, []Column{{Name: "id", Type: KindInt}, {Name: "payload", Type: KindString}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(Row{IntValue(int64(i)), StringValue(fmt.Sprintf("payload-%06d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// checkTable asserts the table holds exactly rows 0..n-1 in scan order.
func checkTable(t *testing.T, tb *Table, n int) {
	t.Helper()
	want := int64(0)
	tb.Scan(func(_ RowID, r Row) bool {
		if r[0].I != want || r[1].S != fmt.Sprintf("payload-%06d", want) {
			t.Fatalf("row %d = (%d, %q)", want, r[0].I, r[1].S)
		}
		want++
		return true
	})
	if int(want) != n {
		t.Fatalf("scanned %d rows, want %d", want, n)
	}
}

func TestBackendFlushReopenRoundTrip(t *testing.T) {
	for _, kind := range []string{"memory", "disk"} {
		t.Run(kind, func(t *testing.T) {
			var b Backend
			path := filepath.Join(t.TempDir(), "store.odb")
			if kind == "disk" {
				var err error
				b, err = OpenDiskBackend(path)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				b = NewMemBackend()
			}
			db := NewDBWithBackend(b, 0)
			const n = 1000 // ~4 pages
			tb := fillTable(t, db, "records", n)
			if err := tb.CreateIndex("id"); err != nil {
				t.Fatal(err)
			}
			db.SetSetting("join_method", "hash")
			db.SetWalLSN(42)
			if _, err := db.FlushBackend(); err != nil {
				t.Fatal(err)
			}
			if kind == "disk" {
				if err := db.CloseBackend(); err != nil {
					t.Fatal(err)
				}
				var err error
				b, err = OpenDiskBackend(path)
				if err != nil {
					t.Fatal(err)
				}
			}

			db2, err := OpenBackendDB(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.CloseBackend()
			tb2 := db2.Table("records")
			if tb2 == nil {
				t.Fatal("records table missing after reopen")
			}
			if tb2.NumRows() != n {
				t.Fatalf("NumRows = %d, want %d", tb2.NumRows(), n)
			}
			checkTable(t, tb2, n)
			if tb2.Index("id") == nil {
				t.Fatal("index not rebuilt on open")
			}
			if got := db2.Setting("join_method"); got != "hash" {
				t.Fatalf("setting = %q", got)
			}
			if got := db2.WalLSN(); got != 42 {
				t.Fatalf("WalLSN = %d", got)
			}
		})
	}
}

func TestBackendEvictionKeepsWorkingSetUnderBudget(t *testing.T) {
	db := NewDBWithBackend(NewMemBackend(), 0)
	const n = 4000
	tb := fillTable(t, db, "records", n)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	total := db.ResidentBytes()
	if total <= 0 {
		t.Fatal("no resident bytes tracked")
	}
	budget := total / 4
	db.SetPageBudget(budget)
	if got := db.ResidentBytes(); got > budget {
		t.Fatalf("resident %d > budget %d after trim", got, budget)
	}
	if db.Stats().PageEvictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
	// Every row must still be readable (faulting pages back in), and the
	// working set must stay bounded while we sweep.
	checkTable(t, tb, n)
	if got := db.ResidentBytes(); got > budget+total/4 {
		t.Fatalf("resident %d far over budget %d during sweep", got, budget)
	}
	if db.Stats().PageFaults.Load() == 0 {
		t.Fatal("no faults counted")
	}
}

func TestBackendDirtyPagesPinnedUntilFlush(t *testing.T) {
	db := NewDBWithBackend(NewMemBackend(), 1) // 1-byte budget: evict everything evictable
	tb := fillTable(t, db, "records", 600)
	// All pages are dirty (never flushed) → pinned despite the budget.
	if db.ResidentBytes() == 0 {
		t.Fatal("dirty pages were evicted")
	}
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	// Flush cleaned them; the eviction pass should have drained the heap.
	if got := db.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d after flush under 1-byte budget", got)
	}
	checkTable(t, tb, 600)
}

func TestBackendUpdateDeleteSurviveFlushCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	b, err := OpenDiskBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDBWithBackend(b, 0)
	tb := fillTable(t, db, "records", 700)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	// Mutate a committed state: update row 10, delete rows 300..309.
	tb.Scan(func(id RowID, r Row) bool {
		if r[0].I == 10 {
			if err := tb.Update(id, Row{IntValue(10), StringValue("updated")}); err != nil {
				t.Fatal(err)
			}
			return false
		}
		return true
	})
	var dead []RowID
	tb.Scan(func(id RowID, r Row) bool {
		if r[0].I >= 300 && r[0].I < 310 {
			dead = append(dead, id)
		}
		return true
	})
	tb.DeleteBatch(dead)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	db.CloseBackend()

	db2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseBackend()
	tb2 := db2.Table("records")
	if tb2.NumRows() != 690 {
		t.Fatalf("NumRows = %d, want 690", tb2.NumRows())
	}
	seen := 0
	tb2.Scan(func(_ RowID, r Row) bool {
		seen++
		if r[0].I == 10 && r[1].S != "updated" {
			t.Fatalf("row 10 = %q", r[1].S)
		}
		if r[0].I >= 300 && r[0].I < 310 {
			t.Fatalf("deleted row %d still live", r[0].I)
		}
		return true
	})
	if seen != 690 {
		t.Fatalf("scanned %d rows", seen)
	}
}

func TestBackendDropAndRenameAcrossFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	db, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fillTable(t, db, "keep", 300)
	fillTable(t, db, "gone", 300)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	if err := db.RenameTable("keep", "kept"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	db.CloseBackend()

	db2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseBackend()
	if db2.HasTable("gone") || db2.HasTable("keep") {
		t.Fatalf("tables after reopen: %v", db2.TableNames())
	}
	checkTable(t, db2.Table("kept"), 300)
}

func TestBackendCompactTruncatesHeapOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	db, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb := fillTable(t, db, "records", 1000)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	var dead []RowID
	tb.Scan(func(id RowID, r Row) bool {
		if r[0].I >= 200 {
			dead = append(dead, id)
		}
		return true
	})
	tb.DeleteBatch(dead)
	if err := tb.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	db.CloseBackend()

	db2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseBackend()
	tb2 := db2.Table("records")
	if tb2.NumRows() != 200 || tb2.NumDeleted() != 0 {
		t.Fatalf("rows=%d ndel=%d", tb2.NumRows(), tb2.NumDeleted())
	}
	if tb2.NumPages() != 1 {
		t.Fatalf("pages = %d, want 1 after compact", tb2.NumPages())
	}
	checkTable(t, tb2, 200)
	// The orphaned tail pages must be gone from the KV, not just the catalog.
	raw, ok, _ := db2.Backend().GetMeta(pageKey(tb2.id, 2))
	if ok {
		t.Fatalf("orphan page survived compact flush (%d bytes)", len(raw))
	}
}

func TestBackendUncommittedMutationsRollBackOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	db, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb := fillTable(t, db, "records", 400)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	// Crash after more inserts without a flush: reopen must show the
	// committed 400 rows only.
	for i := 400; i < 500; i++ {
		if _, err := tb.Insert(Row{IntValue(int64(i)), StringValue("lost")}); err != nil {
			t.Fatal(err)
		}
	}
	db.CloseBackend()

	db2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseBackend()
	checkTable(t, db2.Table("records"), 400)
}

func TestBackendSnapshotOfDiskDBFaultsEverything(t *testing.T) {
	db := NewDBWithBackend(NewMemBackend(), 0)
	fillTable(t, db, "records", 600)
	if _, err := db.FlushBackend(); err != nil {
		t.Fatal(err)
	}
	db.SetPageBudget(1)
	snap := db.Snapshot()
	if len(snap.Tables) != 1 || len(snap.Tables[0].Rows) != 600 {
		t.Fatalf("snapshot shape: %d tables", len(snap.Tables))
	}
	db2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, db2.Table("records"), 600)
}
