package engine

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Persistence snapshots the whole database with encoding/gob so the CLI can
// operate across process invocations. The snapshot format is explicit structs
// decoupled from the in-memory representation, so internal layout can evolve.
// Capturing (Snapshot) and serializing (WriteFile) are separate phases so a
// caller can hold its locks only for the in-memory copy and run the
// expensive gob encode + disk write without blocking writers.

// DBSnapshot is an immutable copy of a database's state, safe to serialize
// concurrently with further mutations of the source DB.
type DBSnapshot struct {
	Settings map[string]string
	Tables   []tableSnapshot
	// WalLSN is the last write-ahead-log sequence number whose effects the
	// snapshot contains; recovery replays the log strictly after it. Zero
	// for stores without a WAL (and for snapshots from older versions,
	// which gob decodes as the zero value).
	WalLSN uint64
}

type tableSnapshot struct {
	Name      string
	Cols      []Column
	PK        []string
	Indexes   [][]string
	Clustered []string
	Rows      []Row
}

// Snapshot captures the database state. Rows are copied cell-by-cell (array
// payloads stay shared — they are immutable once stored) so later in-place
// mutations like AlterColumnType cannot race a concurrent serialization.
func (db *DB) Snapshot() *DBSnapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := &DBSnapshot{
		Settings: make(map[string]string, len(db.settings)),
		WalLSN:   db.walLSN.Load(),
	}
	for k, v := range db.settings {
		snap.Settings[k] = v
	}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		ts := tableSnapshot{Name: t.name, Cols: append([]Column(nil), t.cols...)}
		for _, c := range t.pk {
			ts.PK = append(ts.PK, t.cols[c].Name)
		}
		for key := range t.indexes {
			ts.Indexes = append(ts.Indexes, splitIndexKey(key))
		}
		if t.cluster != "" {
			ts.Clustered = splitIndexKey(t.cluster)
		}
		ts.Rows = make([]Row, 0, t.NumRows())
		for p := 0; p < len(t.pages); p++ {
			for _, r := range t.page(p) {
				if r != nil {
					ts.Rows = append(ts.Rows, CloneRow(r))
				}
			}
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap
}

// ByteSize estimates the snapshot's in-memory footprint (and, closely, its
// serialized size): value payloads plus per-row and per-table overheads. It
// walks the copied rows without serializing, so checkpoint cost can be
// observed and accounted before the expensive gob encode runs.
func (snap *DBSnapshot) ByteSize() int64 {
	var n int64
	for k, v := range snap.Settings {
		n += int64(len(k)+len(v)) + 16
	}
	for _, ts := range snap.Tables {
		n += int64(len(ts.Name)) + 64
		for _, c := range ts.Cols {
			n += int64(len(c.Name)) + 8
		}
		for _, k := range ts.PK {
			n += int64(len(k)) + 8
		}
		for _, idx := range ts.Indexes {
			for _, k := range idx {
				n += int64(len(k)) + 8
			}
		}
		for _, r := range ts.Rows {
			n += 24 // slice header + row overhead
			for _, v := range r {
				n += valueByteSize(v)
			}
		}
	}
	return n
}

// valueByteSize estimates one cell's footprint: the Value struct itself plus
// any heap payload it points at.
func valueByteSize(v Value) int64 {
	n := int64(56) // struct: kind + int64 + float64 + string/slice/ptr headers
	switch v.K {
	case KindString:
		n += int64(len(v.S))
	case KindIntArray:
		n += 8 * int64(len(v.A))
	case KindBitmap:
		n += v.B.SerializedSizeBytes()
	}
	return n
}

// WriteFile serializes the snapshot to path atomically (write to a temp
// file, then rename) and durably: the data is fsynced before the rename and
// the directory entry after it. Durability here is load-bearing — a WAL
// checkpoint truncates log segments on the strength of this file, so a
// snapshot that only reached the page cache would let a power failure
// destroy both copies of acknowledged commits.
func (snap *DBSnapshot) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: save: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Save writes a snapshot of the database to path atomically.
func (db *DB) Save(path string) error {
	return db.Snapshot().WriteFile(path)
}

// tableNamesLocked lists table names; caller holds at least a read lock.
func (db *DB) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	// Deterministic snapshots make tests and diffs stable.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func splitIndexKey(key string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return out
}

// EncodeTo gob-encodes the snapshot to w. This is the snapshot's transport
// form — the same bytes WriteFile persists, minus the file/fsync plumbing —
// so a replication bootstrap can stream it over a connection.
func (snap *DBSnapshot) EncodeTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("engine: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// ErrCorruptSnapshot marks a snapshot file (or stream) that cannot be
// decoded: truncated writes, bit rot, or a file that was never a snapshot.
// Load and DecodeSnapshot wrap every decode failure with it so callers can
// distinguish "the file is damaged" (errors.Is) from I/O errors like a
// missing file, without parsing gob's error strings. No partially-decoded
// database ever escapes — a failed decode returns nil.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// DecodeSnapshot reads a gob-encoded snapshot from r (the inverse of
// EncodeTo, and the format Save writes to disk).
func DecodeSnapshot(r io.Reader) (*DBSnapshot, error) {
	var snap DBSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decode snapshot: %v: %w", err, ErrCorruptSnapshot)
	}
	return &snap, nil
}

// Load reads a snapshot produced by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	defer f.Close()
	snap, err := DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("engine: load %s: %w", filepath.Base(path), err)
	}
	return FromSnapshot(snap)
}

// FromSnapshot materializes a database from a snapshot: the restore half of
// Snapshot, shared by disk loads and replication bootstraps.
func FromSnapshot(snap *DBSnapshot) (*DB, error) {
	db := NewDB()
	db.walLSN.Store(snap.WalLSN)
	for k, v := range snap.Settings {
		db.settings[k] = v
	}
	for _, ts := range snap.Tables {
		t, err := db.CreateTable(ts.Name, ts.Cols)
		if err != nil {
			return nil, err
		}
		if err := t.InsertMany(ts.Rows); err != nil {
			return nil, err
		}
		for _, names := range ts.Indexes {
			if err := t.CreateIndex(names...); err != nil {
				return nil, err
			}
		}
		if len(ts.PK) > 0 {
			if err := t.SetPrimaryKey(ts.PK...); err != nil {
				return nil, err
			}
		}
		if len(ts.Clustered) > 0 {
			if err := t.Cluster(ts.Clustered...); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
