package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"orpheusdb/internal/bitmap"
)

// Bitmap-probe join: the set-based sibling of JoinRids. Checkout hands the
// membership bitmap straight to the scan instead of materializing a rid list
// and building a transient hash table over it — the map build was the
// dominant fixed cost of the hash-join checkout path (one hash insert per
// member rid before the scan even starts). Probing the compressed bitmap
// during the scan removes both the materialization and the build, and the
// scan itself can split into page chunks filled by a worker pool when cores
// are available.

// setJoinMinPages is the scan size below which chunked parallelism cannot
// recoup its fan-out cost.
const setJoinMinPages = 16

// setJoinWorkers, when set, overrides the GOMAXPROCS-derived worker count
// for parallel probe scans (tests pin it; 0 restores the default).
var setJoinWorkers atomic.Int32

// SetJoinWorkers overrides the probe-scan worker count. n <= 0 restores the
// GOMAXPROCS-aware default. Intended for tests and benchmarks.
func SetJoinWorkers(n int) {
	if n < 0 {
		n = 0
	}
	setJoinWorkers.Store(int32(n))
}

// JoinWorkers reports the worker count parallel probe scans will use.
func JoinWorkers() int {
	if v := setJoinWorkers.Load(); v > 0 {
		return int(v)
	}
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JoinRidsSet joins a membership bitmap with table t on integer column
// ridCol, returning matching rows in scan order (the same order
// hashJoinRids emits). For HashJoin — the standard checkout plan — the scan
// probes the bitmap directly; merge and index-nested-loop joins fall back to
// JoinRids over the materialized rid list, which their ordered traversals
// need anyway.
func JoinRidsSet(t *Table, ridCol int, set *bitmap.Bitmap, m JoinMethod) ([]Row, error) {
	if ridCol < 0 || ridCol >= len(t.cols) {
		return nil, fmt.Errorf("engine: join: bad rid column %d", ridCol)
	}
	if m != HashJoin {
		return JoinRids(t, ridCol, set.ToSlice(), m)
	}
	n := int(set.Cardinality())
	if workers := JoinWorkers(); workers > 1 && len(t.pages) >= setJoinMinPages {
		return probeJoinParallel(t, ridCol, set, n, workers), nil
	}
	return probeJoinSeq(t, ridCol, set, n), nil
}

// probeJoinSeq is the single-goroutine probe scan, with the same I/O
// accounting as Table.Scan.
func probeJoinSeq(t *Table, ridCol int, set *bitmap.Bitmap, card int) []Row {
	out := make([]Row, 0, card)
	pr := bitmap.NewProber(set)
	for p := 0; p < len(t.pages); p++ {
		page := t.page(p)
		t.stats.SeqPages.Add(1)
		for _, r := range page {
			if r == nil {
				continue
			}
			t.stats.RowsScanned.Add(1)
			if pr.Contains(r[ridCol].I) {
				out = append(out, r)
			}
		}
	}
	return out
}

// probeJoinParallel splits the heap into page chunks, scans them with a
// worker pool (each worker owns a Prober and a result buffer per chunk), and
// stitches the chunk results back in page order so the output is identical
// to the sequential scan. Stats counters are atomic, so concurrent chunk
// scans account correctly.
func probeJoinParallel(t *Table, ridCol int, set *bitmap.Bitmap, card, workers int) []Row {
	chunkPages := (len(t.pages) + workers*4 - 1) / (workers * 4)
	if chunkPages < 4 {
		chunkPages = 4
	}
	nChunks := (len(t.pages) + chunkPages - 1) / chunkPages
	if workers > nChunks {
		workers = nChunks
	}
	results := make([][]Row, nChunks)
	var next atomic.Int64
	scanChunk := func(ci int) {
		lo := ci * chunkPages
		hi := lo + chunkPages
		if hi > len(t.pages) {
			hi = len(t.pages)
		}
		buf := make([]Row, 0, card/nChunks+8)
		pr := bitmap.NewProber(set)
		for p := lo; p < hi; p++ {
			page := t.page(p)
			t.stats.SeqPages.Add(1)
			for _, r := range page {
				if r == nil {
					continue
				}
				t.stats.RowsScanned.Add(1)
				if pr.Contains(r[ridCol].I) {
					buf = append(buf, r)
				}
			}
		}
		results[ci] = buf
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := next.Add(1) - 1
				if ci >= int64(nChunks) {
					return
				}
				scanChunk(int(ci))
			}
		}()
	}
	for {
		ci := next.Add(1) - 1
		if ci >= int64(nChunks) {
			break
		}
		scanChunk(int(ci))
	}
	wg.Wait()
	out := make([]Row, 0, card)
	for _, buf := range results {
		out = append(out, buf...)
	}
	return out
}
