package engine

import (
	"fmt"
	"sort"
)

// JoinMethod selects the physical join algorithm used to combine a checkout's
// rid list with the data table, per Appendix D.1 of the paper.
type JoinMethod int

// Available join methods.
const (
	HashJoin JoinMethod = iota
	MergeJoin
	IndexNestedLoopJoin
)

// String names the method.
func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "hash-join"
	case MergeJoin:
		return "merge-join"
	case IndexNestedLoopJoin:
		return "index-nested-loop-join"
	}
	return fmt.Sprintf("join(%d)", int(m))
}

// ParseJoinMethod parses a session-setting value.
func ParseJoinMethod(s string) (JoinMethod, error) {
	switch s {
	case "hash", "hash-join", "hashjoin":
		return HashJoin, nil
	case "merge", "merge-join", "mergejoin":
		return MergeJoin, nil
	case "inlj", "index", "index-nested-loop-join", "indexnestedloop":
		return IndexNestedLoopJoin, nil
	}
	return HashJoin, fmt.Errorf("engine: unknown join method %q", s)
}

// pageCursor fetches rows by RowID while modeling locality: re-reading the
// current page is free (buffer hit), advancing to the next page is a
// sequential fetch, anything else is a random fetch. This is what turns a
// dense sorted probe stream over a rid-clustered table into a near-sequential
// scan — the key observation of Appendix D.1.
type pageCursor struct {
	t    *Table
	last int
}

func newPageCursor(t *Table) *pageCursor { return &pageCursor{t: t, last: -2} }

func (c *pageCursor) fetch(id RowID) Row {
	p := id.Page()
	switch {
	case p == c.last:
		// buffer hit, no I/O
	case p == c.last+1:
		c.t.stats.SeqPages.Add(1)
	default:
		c.t.stats.RandPages.Add(1)
	}
	c.last = p
	r := c.t.getNoCharge(id)
	if r != nil {
		c.t.stats.RowsScanned.Add(1)
	}
	return r
}

// JoinRids joins the rid list with table t on integer column ridCol using
// method m, returning the matching rows in unspecified order. rids need not
// be sorted or deduplicated; duplicates yield one output row each. This is
// the engine primitive behind the split-by-rlist checkout
// (unnest(rlist) JOIN dataTable).
func JoinRids(t *Table, ridCol int, rids []int64, m JoinMethod) ([]Row, error) {
	if ridCol < 0 || ridCol >= len(t.cols) {
		return nil, fmt.Errorf("engine: join: bad rid column %d", ridCol)
	}
	switch m {
	case HashJoin:
		return hashJoinRids(t, ridCol, rids), nil
	case MergeJoin:
		return mergeJoinRids(t, ridCol, rids), nil
	case IndexNestedLoopJoin:
		return indexNestedLoopRids(t, ridCol, rids)
	}
	return nil, fmt.Errorf("engine: join: unknown method %v", m)
}

// hashJoinRids builds a hash table on the rid list and sequentially scans the
// data table probing it. Cost is one full sequential scan regardless of
// physical layout — the stable plan the paper standardizes on.
func hashJoinRids(t *Table, ridCol int, rids []int64) []Row {
	set := make(map[int64]int, len(rids))
	for _, r := range rids {
		set[r]++
		t.stats.HashBuilds.Add(1)
	}
	out := make([]Row, 0, len(rids))
	t.Scan(func(_ RowID, r Row) bool {
		if n := set[r[ridCol].I]; n > 0 {
			for i := 0; i < n; i++ {
				out = append(out, r)
			}
		}
		return true
	})
	return out
}

// mergeJoinRids sorts the rid list and merges it against the table in rid
// order. If the heap is clustered on the rid column the ordered traversal is
// a sequential scan; otherwise the traversal follows the rid index and every
// row fetch is a random access (the pathological plan of Figure 19e), unless
// no rid index exists, in which case the engine falls back to scan+sort.
func mergeJoinRids(t *Table, ridCol int, rids []int64) []Row {
	sorted := append([]int64(nil), rids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	ridName := t.cols[ridCol].Name
	ix := t.Index(ridName)
	out := make([]Row, 0, len(sorted))

	if ix == nil {
		// Fallback: sequential scan, collect (rid,row), sort, merge.
		type pair struct {
			rid int64
			row Row
		}
		var all []pair
		t.Scan(func(_ RowID, r Row) bool {
			all = append(all, pair{r[ridCol].I, r})
			return true
		})
		sort.Slice(all, func(i, j int) bool { return all[i].rid < all[j].rid })
		i := 0
		for _, want := range sorted {
			for i < len(all) && all[i].rid < want {
				i++
			}
			if i < len(all) && all[i].rid == want {
				out = append(out, all[i].row)
			}
		}
		return out
	}

	cur := newPageCursor(t)
	entries := ix.Ordered()
	t.stats.IndexProbes.Add(int64(len(entries)))
	i := 0
	for _, e := range entries {
		if i >= len(sorted) {
			break
		}
		r := cur.fetch(e.id)
		if r == nil {
			continue
		}
		rid := r[ridCol].I
		for i < len(sorted) && sorted[i] < rid {
			i++
		}
		for i < len(sorted) && sorted[i] == rid {
			out = append(out, r)
			i++
		}
	}
	return out
}

// indexNestedLoopRids probes the rid index once per rid, fetching each match
// via the page cursor. Requires an index on the rid column.
func indexNestedLoopRids(t *Table, ridCol int, rids []int64) ([]Row, error) {
	ridName := t.cols[ridCol].Name
	ix := t.Index(ridName)
	if ix == nil {
		return nil, fmt.Errorf("engine: join: no index on %s.%s for index-nested-loop join", t.name, ridName)
	}
	sorted := append([]int64(nil), rids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cur := newPageCursor(t)
	out := make([]Row, 0, len(sorted))
	for _, rid := range sorted {
		t.stats.IndexProbes.Add(1)
		for _, id := range ix.Lookup(IntValue(rid)) {
			if r := cur.fetch(id); r != nil {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// HashJoinGeneric joins two row sets on the given key columns with a
// classic build/probe hash join, used by the SQL executor for equi-joins.
func HashJoinGeneric(build, probe []Row, buildKeys, probeKeys []int, stats *Stats, emit func(b, p Row)) {
	ht := make(map[string][]Row, len(build))
	for _, r := range build {
		vals := make([]Value, len(buildKeys))
		for i, c := range buildKeys {
			vals[i] = r[c]
		}
		k := EncodeKey(vals...)
		ht[k] = append(ht[k], r)
		if stats != nil {
			stats.HashBuilds.Add(1)
		}
	}
	for _, r := range probe {
		vals := make([]Value, len(probeKeys))
		for i, c := range probeKeys {
			vals[i] = r[c]
		}
		for _, b := range ht[EncodeKey(vals...)] {
			emit(b, r)
		}
	}
}
