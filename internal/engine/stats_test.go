package engine

import (
	"strings"
	"testing"
)

// The snapshot formatter must report every counter group — PRs 3–5 added
// checkpoint, cache, and branch/merge counters that the original format
// silently dropped from experiment output.
func TestStatSnapshotStringCoversAllCounters(t *testing.T) {
	var s Stats
	s.SeqPages.Store(1)
	s.RandPages.Store(2)
	s.RowsScanned.Store(3)
	s.IndexProbes.Store(4)
	s.HashBuilds.Store(5)
	s.Checkpoints.Store(6)
	s.CheckpointBytes.Store(7)
	s.CacheHits.Store(8)
	s.CacheMisses.Store(9)
	s.CacheEvictions.Store(10)
	s.BranchCreates.Store(11)
	s.Merges.Store(12)
	s.MergeConflicts.Store(13)

	got := s.Snapshot().String()
	for _, want := range []string{
		"seq=1", "rand=2", "rows=3", "probes=4", "hash=5",
		"ckpt=6", "ckptBytes=7",
		"cacheHit=8", "cacheMiss=9", "cacheEvict=10",
		"branches=11", "merges=12", "conflicts=13",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("StatSnapshot.String() missing %q: %s", want, got)
		}
	}
}
