package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// then one sample line per series — histograms expand to cumulative
// _bucket{le=...} samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range sers {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch {
	case s.fn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labelNames, s.labels, "", ""), formatFloat(s.fn()))
	case s.c != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(f.labelNames, s.labels, "", ""), s.c.Value())
	case s.g != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(f.labelNames, s.labels, "", ""), s.g.Value())
	case s.h != nil:
		cum, total := s.h.snapshot()
		for i, bound := range s.h.bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelSet(f.labelNames, s.labels, "le", formatFloat(bound)), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelSet(f.labelNames, s.labels, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			labelSet(f.labelNames, s.labels, "", ""), formatFloat(s.h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			labelSet(f.labelNames, s.labels, "", ""), total)
	}
}

// labelSet renders {k="v",...} from the family's label names and this
// series' values, appending an extra pair (the histogram "le") when given.
// Returns "" when there are no labels at all.
func labelSet(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as text/plain exposition for GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
