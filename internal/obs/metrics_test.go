package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Nil receivers must be no-ops.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Gauge("dup_total", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "spaces are not allowed")
}

func TestHistogramBucketsSumCount(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Fatalf("sum = %g, want 560.5", h.Sum())
	}
	cum, total := h.snapshot()
	want := []int64{1, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum[i], w)
		}
	}
	if total != 5 {
		t.Fatalf("snapshot total = %d, want 5", total)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	// 90 fast ops at ~10µs, 10 slow ops at ~50ms: p50 must sit in the fast
	// band and p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.ObserveDuration(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(50 * time.Millisecond)
	}
	p50 := h.QuantileDuration(0.50)
	p99 := h.QuantileDuration(0.99)
	if p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want in the microsecond band", p50)
	}
	if p99 < 10*time.Millisecond {
		t.Fatalf("p99 = %v, want in the slow band", p99)
	}
	if p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v", p50, p99)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

// TestHistogramQuantileOverflow pins the +Inf-bucket behavior: a quantile
// landing past the last bound reports the largest overflowing observation,
// not the last finite bound — so p99 of an outlier-heavy series is no longer
// understated — while quantiles inside the bounds stay interpolated.
func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1000)
	if q := h.Quantile(0.5); q != 1000 {
		t.Fatalf("overflow quantile = %g, want the observed max 1000", q)
	}
	h.Observe(2500)
	if q := h.Quantile(0.99); q != 2500 {
		t.Fatalf("overflow quantile = %g, want the new max 2500", q)
	}

	// Outlier-heavy series: 90 fast observations, 10 far past the last bound.
	// p99 sits in the +Inf bucket and must surface the outlier magnitude.
	h2 := NewHistogram([]float64{0.5, 1})
	for i := 0; i < 90; i++ {
		h2.Observe(0.2)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(60)
	}
	if q := h2.Quantile(0.99); q != 60 {
		t.Fatalf("p99 = %g, want 60 (outliers hidden by the last bound)", q)
	}
	if q := h2.Quantile(0.5); q > 0.5 {
		t.Fatalf("p50 = %g, want interpolated within the first bucket", q)
	}

	// A max below the last bound keeps the old clamp: the rank says "past the
	// buckets" only because of where observations fell, and the last bound
	// remains the tightest truthful answer.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(1.5)
	if q := h3.Quantile(1); q != 2 {
		t.Fatalf("in-bounds q = %g, want bucket bound 2", q)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "status")
	v.With("/a", "200").Add(3)
	v.With("/a", "200").Inc()
	v.With("/a", "500").Inc()
	if got := v.With("/a", "200").Value(); got != 4 {
		t.Fatalf("child counter = %d, want 4", got)
	}
	hv := r.HistogramVec("lat_seconds", "latency", LatencyBuckets, "route")
	hv.With("/a").ObserveDuration(time.Millisecond)
	if hv.With("/a").Count() != 1 {
		t.Fatal("histogram child lost an observation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("orpheus_ops_total", "total ops")
	c.Add(2)
	r.GaugeFunc("orpheus_live", "live value", func() float64 { return 1.5 })
	v := r.CounterVec("orpheus_req_total", "requests", "route")
	v.With(`/a"b\c`).Inc()
	h := r.Histogram("orpheus_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP orpheus_ops_total total ops\n",
		"# TYPE orpheus_ops_total counter\n",
		"orpheus_ops_total 2\n",
		"# TYPE orpheus_live gauge\n",
		"orpheus_live 1.5\n",
		`orpheus_req_total{route="/a\"b\\c"} 1` + "\n",
		"# TYPE orpheus_lat_seconds histogram\n",
		`orpheus_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`orpheus_lat_seconds_bucket{le="1"} 1` + "\n",
		`orpheus_lat_seconds_bucket{le="+Inf"} 2` + "\n",
		"orpheus_lat_seconds_sum 5.05\n",
		"orpheus_lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "concurrent", LatencyBuckets)
	c := r.Counter("conc_total", "concurrent")
	v := r.CounterVec("conc_vec_total", "concurrent vec", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.ObserveDuration(time.Microsecond)
				c.Inc()
				v.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 || v.With("x").Value() != 8000 {
		t.Fatalf("lost updates: hist=%d counter=%d vec=%d", h.Count(), c.Value(), v.With("x").Value())
	}
}

// TestOverflowHistogramExpositionParses guards the exposition side of the
// overflow fix: a histogram whose observations land past the last bound must
// still write well-formed text — a +Inf bucket equal to _count, cumulative
// bucket lines, and finite sample values.
func TestOverflowHistogramExpositionParses(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over_seconds", "overflow-heavy latencies", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(900)
	h.Observe(4000)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var infBucket, count float64
	var bucketVals []float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("non-finite or unparsable value in %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(fields[0], `over_seconds_bucket{le="+Inf"}`):
			infBucket = v
		case fields[0] == "over_seconds_count":
			count = v
		}
		if strings.HasPrefix(fields[0], "over_seconds_bucket") {
			bucketVals = append(bucketVals, v)
		}
	}
	if count != 3 || infBucket != 3 {
		t.Fatalf("count=%g +Inf bucket=%g, want both 3", count, infBucket)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketVals)
		}
	}
	if q := h.Quantile(0.99); q != 4000 {
		t.Fatalf("p99 = %g, want the overflow max 4000", q)
	}
}
