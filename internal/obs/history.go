package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// HistoryTier is one retention level of the metrics history: sample every
// Interval, keep Retain's worth of points in a fixed ring.
type HistoryTier struct {
	Interval time.Duration
	Retain   time.Duration
}

// DefaultHistoryTiers is the stock two-tier layout: 10-second samples for an
// hour, 1-minute samples for a day.
func DefaultHistoryTiers() []HistoryTier {
	return []HistoryTier{
		{Interval: 10 * time.Second, Retain: time.Hour},
		{Interval: time.Minute, Retain: 24 * time.Hour},
	}
}

// maxTierPoints bounds any single ring regardless of Retain/Interval, so a
// misconfigured tier cannot balloon the fixed memory budget.
const maxTierPoints = 8192

// HistoryOptions configures a History.
type HistoryOptions struct {
	// Tiers are the retention levels, finest first (defaults to
	// DefaultHistoryTiers). Tier 0's interval is the sampling cadence.
	Tiers []HistoryTier
	// MaxSeries caps the number of distinct series tracked; samples for
	// series beyond the budget are dropped (default 1024).
	MaxSeries int
}

// HistoryPoint is one retained reading: unix-millisecond timestamp and value.
type HistoryPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// HistorySeries is one series' retained points from one tier, as served by
// GET /api/v1/metrics/history.
type HistorySeries struct {
	Name   string         `json:"name"`
	Labels string         `json:"labels,omitempty"`
	Tier   string         `json:"tier"`
	Points []HistoryPoint `json:"points"`
}

// History is a fixed-budget retained time-series over a Registry: a sampler
// records every counter, gauge, and histogram digest (count/sum/p50/p95/p99)
// into per-series rings at tiered resolutions, so "what did checkout p95 do
// over the last hour" is answerable without an external TSDB. All methods
// are safe for concurrent use.
type History struct {
	reg       *Registry
	tiers     []HistoryTier
	maxSeries int

	mu     sync.Mutex
	series map[string]*historySeries
	order  []string
	last   []time.Time // per-tier time of last recorded sample

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

type historySeries struct {
	name   string
	labels string
	rings  []pointRing
}

// pointRing is a fixed-capacity ring of points, oldest first.
type pointRing struct {
	pts  []HistoryPoint
	head int // index of the oldest point
	n    int
}

func (r *pointRing) push(p HistoryPoint) {
	if len(r.pts) == 0 {
		return
	}
	if r.n < len(r.pts) {
		r.pts[(r.head+r.n)%len(r.pts)] = p
		r.n++
		return
	}
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
}

func (r *pointRing) since(sinceMs int64) []HistoryPoint {
	out := make([]HistoryPoint, 0, r.n)
	for i := 0; i < r.n; i++ {
		if p := r.pts[(r.head+i)%len(r.pts)]; p.T >= sinceMs {
			out = append(out, p)
		}
	}
	return out
}

func (r *pointRing) newest() (HistoryPoint, bool) {
	if r.n == 0 {
		return HistoryPoint{}, false
	}
	return r.pts[(r.head+r.n-1)%len(r.pts)], true
}

func tierCap(t HistoryTier) int {
	n := int(t.Retain / t.Interval)
	if n < 1 {
		n = 1
	}
	if n > maxTierPoints {
		n = maxTierPoints
	}
	return n
}

// NewHistory builds a sampler over reg. Call Start to launch the background
// goroutine, or drive it manually with Sample (tests, benchmarks).
func NewHistory(reg *Registry, opts HistoryOptions) (*History, error) {
	tiers := opts.Tiers
	if len(tiers) == 0 {
		tiers = DefaultHistoryTiers()
	}
	for i, t := range tiers {
		if t.Interval <= 0 || t.Retain < t.Interval {
			return nil, fmt.Errorf("obs: history tier %d: need 0 < interval <= retain, got %v/%v", i, t.Interval, t.Retain)
		}
		if i > 0 && t.Interval <= tiers[i-1].Interval {
			return nil, fmt.Errorf("obs: history tiers must be finest first (tier %d interval %v <= tier %d interval %v)",
				i, t.Interval, i-1, tiers[i-1].Interval)
		}
	}
	maxSeries := opts.MaxSeries
	if maxSeries <= 0 {
		maxSeries = 1024
	}
	return &History{
		reg:       reg,
		tiers:     append([]HistoryTier(nil), tiers...),
		maxSeries: maxSeries,
		series:    make(map[string]*historySeries),
		last:      make([]time.Time, len(tiers)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Tiers returns the retention configuration.
func (h *History) Tiers() []HistoryTier {
	return append([]HistoryTier(nil), h.tiers...)
}

// Start launches the sampling goroutine (idempotent). Stop ends it.
func (h *History) Start() {
	h.startOnce.Do(func() {
		go h.run()
	})
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to call
// multiple times and without a prior Start.
func (h *History) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: nothing to wait for
	<-h.done
}

func (h *History) run() {
	defer close(h.done)
	h.Sample(time.Now())
	tick := time.NewTicker(h.tiers[0].Interval)
	defer tick.Stop()
	for {
		select {
		case <-h.stop:
			return
		case now := <-tick.C:
			h.Sample(now)
		}
	}
}

// Sample takes one reading of the registry at the given instant, recording
// into each tier whose interval has elapsed since its last recording (with
// 5% tolerance, so ticker jitter never skips a slot). Exposed so tests and
// benchmarks can drive the sampler with synthetic clocks.
func (h *History) Sample(now time.Time) {
	samples := h.reg.Samples() // outside h.mu: collectors may take other locks
	h.mu.Lock()
	defer h.mu.Unlock()

	due := make([]bool, len(h.tiers))
	any := false
	for i, t := range h.tiers {
		if h.last[i].IsZero() || now.Sub(h.last[i]) >= t.Interval-t.Interval/20 {
			due[i] = true
			h.last[i] = now
			any = true
		}
	}
	if !any {
		return
	}
	ms := now.UnixMilli()
	for _, s := range samples {
		key := s.Name + s.Labels
		hs := h.series[key]
		if hs == nil {
			if len(h.series) >= h.maxSeries {
				continue
			}
			hs = &historySeries{name: s.Name, labels: s.Labels, rings: make([]pointRing, len(h.tiers))}
			for i, t := range h.tiers {
				hs.rings[i].pts = make([]HistoryPoint, tierCap(t))
			}
			h.series[key] = hs
			h.order = append(h.order, key)
		}
		for i := range h.tiers {
			if due[i] {
				hs.rings[i].push(HistoryPoint{T: ms, V: s.Value})
			}
		}
	}
}

// Names lists the tracked series names (deduplicated, insertion order).
func (h *History) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, k := range h.order {
		s := h.series[k]
		if !seen[s.name] {
			seen[s.name] = true
			out = append(out, s.name)
		}
	}
	return out
}

// Query returns the retained points at or after since for every series whose
// name equals name or extends it with a suffix (so "orpheus_checkout_seconds"
// matches the _count/_sum/_p50/_p95/_p99 digests and any labeled children);
// name "" matches everything. Per series it serves the finest tier whose
// retention window, anchored at that series' newest point, still reaches
// since — older queries fall through to coarser tiers.
func (h *History) Query(name string, since time.Time) []HistorySeries {
	sinceMs := since.UnixMilli()
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistorySeries
	for _, k := range h.order {
		s := h.series[k]
		if name != "" && s.name != name && !hasSeriesPrefix(s.name, name) {
			continue
		}
		tier := len(h.tiers) - 1
		for i := range h.tiers {
			newest, ok := s.rings[i].newest()
			if !ok {
				continue
			}
			if newest.T-h.tiers[i].Retain.Milliseconds() <= sinceMs {
				tier = i
				break
			}
		}
		out = append(out, HistorySeries{
			Name:   s.name,
			Labels: s.labels,
			Tier:   h.tiers[tier].Interval.String(),
			Points: s.rings[tier].since(sinceMs),
		})
	}
	return out
}

func hasSeriesPrefix(name, prefix string) bool {
	return len(name) > len(prefix)+1 && name[:len(prefix)] == prefix && name[len(prefix)] == '_'
}

// historyDump is the persisted form: versioned JSON written through the
// store's checkpoint path, so retained history survives a restart.
type historyDump struct {
	V      int                 `json:"v"`
	Series []historySeriesDump `json:"series"`
}

type historySeriesDump struct {
	Name   string           `json:"name"`
	Labels string           `json:"labels,omitempty"`
	Tiers  [][]HistoryPoint `json:"tiers"`
}

// Snapshot serializes the retained points for persistence.
func (h *History) Snapshot() ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dump := historyDump{V: 1}
	for _, k := range h.order {
		s := h.series[k]
		sd := historySeriesDump{Name: s.name, Labels: s.labels, Tiers: make([][]HistoryPoint, len(s.rings))}
		for i := range s.rings {
			sd.Tiers[i] = s.rings[i].since(0)
		}
		dump.Series = append(dump.Series, sd)
	}
	return json.Marshal(dump)
}

// Restore ingests a prior Snapshot, re-pushing its points through the current
// tier rings (best-effort: a changed tier layout keeps whatever fits). Call
// before Start; points sampled after a Restore append after the restored
// tail.
func (h *History) Restore(data []byte) error {
	var dump historyDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("obs: restore history: %w", err)
	}
	if dump.V != 1 {
		return fmt.Errorf("obs: restore history: unsupported version %d", dump.V)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sd := range dump.Series {
		key := sd.Name + sd.Labels
		hs := h.series[key]
		if hs == nil {
			if len(h.series) >= h.maxSeries {
				continue
			}
			hs = &historySeries{name: sd.Name, labels: sd.Labels, rings: make([]pointRing, len(h.tiers))}
			for i, t := range h.tiers {
				hs.rings[i].pts = make([]HistoryPoint, tierCap(t))
			}
			h.series[key] = hs
			h.order = append(h.order, key)
		}
		for i := 0; i < len(hs.rings) && i < len(sd.Tiers); i++ {
			for _, p := range sd.Tiers[i] {
				hs.rings[i].push(p)
			}
		}
	}
	return nil
}
