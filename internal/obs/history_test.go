package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// histTiers is the synthetic two-tier layout the boundary tests drive with a
// fake clock: 1-second samples kept 10 seconds, 10-second samples kept a
// minute.
func histTiers() []HistoryTier {
	return []HistoryTier{
		{Interval: time.Second, Retain: 10 * time.Second},
		{Interval: 10 * time.Second, Retain: time.Minute},
	}
}

func TestHistoryTierValidation(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range [][]HistoryTier{
		{{Interval: 0, Retain: time.Minute}},
		{{Interval: time.Second, Retain: time.Millisecond}},
		{{Interval: time.Minute, Retain: time.Hour}, {Interval: time.Second, Retain: time.Hour}},
		{{Interval: time.Second, Retain: time.Hour}, {Interval: time.Second, Retain: time.Hour}},
	} {
		if _, err := NewHistory(reg, HistoryOptions{Tiers: bad}); err == nil {
			t.Fatalf("tiers %v accepted, want error", bad)
		}
	}
	if _, err := NewHistory(reg, HistoryOptions{}); err != nil {
		t.Fatalf("default tiers rejected: %v", err)
	}
}

// TestHistoryRetentionAndDownsampling drives a synthetic clock through two
// minutes of counter traffic and checks both tiers at their boundaries: the
// fine ring holds exactly its retention's worth of 1s points, the coarse ring
// downsamples to one point per 10s, and Query picks the finest tier that
// still reaches the requested window.
func TestHistoryRetentionAndDownsampling(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops")
	h, err := NewHistory(reg, HistoryOptions{Tiers: histTiers()})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i <= 120; i++ {
		c.Inc()
		h.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	now := t0.Add(120 * time.Second)

	// Recent window → the 1s tier serves it.
	fine := h.Query("ops_total", now.Add(-5*time.Second))
	if len(fine) != 1 {
		t.Fatalf("got %d series, want 1", len(fine))
	}
	if fine[0].Tier != "1s" {
		t.Fatalf("recent query served from tier %s, want 1s", fine[0].Tier)
	}
	if n := len(fine[0].Points); n != 6 { // t-5s .. t inclusive
		t.Fatalf("fine window has %d points, want 6: %v", n, fine[0].Points)
	}
	for i, p := range fine[0].Points {
		if want := float64(116 + i); p.V != want {
			t.Fatalf("fine point %d = %g, want %g (last-value, 1s apart)", i, p.V, want)
		}
	}

	// Window past the fine tier's 10s retention → falls to the 10s tier, with
	// points 10s apart (downsampled, not averaged: each slot is one reading).
	coarse := h.Query("ops_total", now.Add(-40*time.Second))
	if coarse[0].Tier != "10s" {
		t.Fatalf("old query served from tier %s, want 10s", coarse[0].Tier)
	}
	pts := coarse[0].Points
	if len(pts) < 4 {
		t.Fatalf("coarse window has %d points, want >= 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T-pts[i-1].T != (10 * time.Second).Milliseconds() {
			t.Fatalf("coarse points %d ms apart, want 10000: %v", pts[i].T-pts[i-1].T, pts)
		}
	}

	// Ring capacity: the fine ring holds retain/interval points, no more.
	all := h.Query("ops_total", time.Time{})
	for _, s := range all {
		if s.Tier == "1s" {
			t.Fatalf("query older than fine retention must not pick the 1s tier")
		}
	}
}

// TestHistorySampleDueTolerance pins the 5% jitter tolerance: a tick arriving
// slightly early still records, one arriving far too early does not.
func TestHistorySampleDueTolerance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	h, err := NewHistory(reg, HistoryOptions{Tiers: []HistoryTier{{Interval: time.Second, Retain: time.Minute}}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	h.Sample(t0)
	h.Sample(t0.Add(500 * time.Millisecond)) // far too early: skipped
	h.Sample(t0.Add(960 * time.Millisecond)) // within 5% of due: recorded
	got := h.Query("x_total", time.Time{})
	if n := len(got[0].Points); n != 2 {
		t.Fatalf("recorded %d points, want 2 (jittered tick must count, early one must not)", n)
	}
}

// TestHistoryQueryPrefix checks the family-matching rule: a query for a
// histogram's base name returns its _count/_sum/_pXX digests, an exact digest
// name returns just that series, and a non-token prefix matches nothing.
func TestHistoryQueryPrefix(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	hist.Observe(0.05)
	reg.Counter("lat_seconds_like_total", "a lookalike") // extends the name with "_like..."
	h, err := NewHistory(reg, HistoryOptions{Tiers: histTiers()})
	if err != nil {
		t.Fatal(err)
	}
	h.Sample(time.Unix(1_700_000_000, 0))

	byName := map[string]bool{}
	for _, s := range h.Query("lat_seconds", time.Time{}) {
		byName[s.Name] = true
	}
	for _, want := range []string{"lat_seconds_count", "lat_seconds_sum", "lat_seconds_p50", "lat_seconds_p95", "lat_seconds_p99"} {
		if !byName[want] {
			t.Fatalf("family query missing digest %s (got %v)", want, byName)
		}
	}
	// The "_" extension rule is deliberately loose enough to include the
	// lookalike — it shares the name token boundary — but a mid-token prefix
	// must not match.
	if got := h.Query("lat_secon", time.Time{}); len(got) != 0 {
		t.Fatalf("mid-token prefix matched %d series", len(got))
	}
	if got := h.Query("lat_seconds_p95", time.Time{}); len(got) != 1 || got[0].Name != "lat_seconds_p95" {
		t.Fatalf("exact digest query = %+v, want the single p95 series", got)
	}
	if got := h.Query("", time.Time{}); len(got) < 6 {
		t.Fatalf("empty-name query returned %d series, want all", len(got))
	}
}

// TestHistorySnapshotRestoreRoundTrip persists a sampled history and restores
// it into a fresh sampler: queries over both must agree, and sampling after
// the restore appends after the restored tail.
func TestHistorySnapshotRestoreRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rt_total", "round trip")
	h, err := NewHistory(reg, HistoryOptions{Tiers: histTiers()})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 30; i++ {
		c.Inc()
		h.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	data, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	h2, err := NewHistory(reg, HistoryOptions{Tiers: histTiers()})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Restore(data); err != nil {
		t.Fatal(err)
	}
	want := h.Query("rt_total", time.Time{})
	got := h2.Query("rt_total", time.Time{})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored query disagrees:\nwant %+v\ngot  %+v", want, got)
	}

	// Post-restore samples extend the restored tail.
	c.Inc()
	h2.Sample(t0.Add(31 * time.Second))
	after := h2.Query("rt_total", time.Time{})
	var fine *HistorySeries
	for i := range after {
		if after[i].Name == "rt_total" {
			fine = &after[i]
		}
	}
	last := fine.Points[len(fine.Points)-1]
	if last.V != 31 {
		t.Fatalf("post-restore sample = %g, want 31 appended after restored tail", last.V)
	}

	// Garbage and future dump versions are rejected, not half-applied.
	if err := h2.Restore([]byte("{")); err == nil {
		t.Fatal("corrupt dump accepted")
	}
	if err := h2.Restore([]byte(`{"v":99}`)); err == nil {
		t.Fatal("future dump version accepted")
	}
}

func TestHistoryMaxSeriesBudget(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 5; i++ {
		reg.Counter(fmt.Sprintf("m%d_total", i), "m")
	}
	h, err := NewHistory(reg, HistoryOptions{Tiers: histTiers(), MaxSeries: 3})
	if err != nil {
		t.Fatal(err)
	}
	h.Sample(time.Unix(1_700_000_000, 0))
	if got := len(h.Query("", time.Time{})); got != 3 {
		t.Fatalf("tracked %d series, want the 3-series budget enforced", got)
	}
}

// TestHistoryStartStop exercises the real goroutine path: a fast cadence, a
// brief run, and an idempotent stop — including Stop without Start.
func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("live_total", "live")
	c.Inc()
	h, err := NewHistory(reg, HistoryOptions{Tiers: []HistoryTier{{Interval: 5 * time.Millisecond, Retain: time.Second}}})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(h.Query("live_total", time.Time{})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler recorded nothing within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent

	h2, err := NewHistory(reg, HistoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2.Stop() // stop without start must not hang
}

// TestHistoryRaceHammer runs concurrent registry writers against Sample,
// Query, Names, and Snapshot. Meaningful under -race; correctness assertion
// is just "no panic, and the sampler saw the series".
func TestHistoryRaceHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_total", "race")
	hist := reg.Histogram("race_seconds", "race", []float64{0.001, 0.1})
	hv := reg.CounterVec("race_vec_total", "race vec", "k")
	h, err := NewHistory(reg, HistoryOptions{Tiers: []HistoryTier{{Interval: time.Microsecond, Retain: time.Second}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				hist.Observe(float64(j%100) / 1000)
				hv.With(fmt.Sprintf("k%d", j%3)).Inc()
			}
		}(i)
	}
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 200; i++ {
		h.Sample(base.Add(time.Duration(i) * time.Millisecond))
		_ = h.Query("race_total", time.Time{})
		_ = h.Names()
		if _, err := h.Snapshot(); err != nil {
			t.Errorf("snapshot: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if len(h.Query("race_total", time.Time{})) == 0 {
		t.Fatal("sampler lost the counter series")
	}
}
