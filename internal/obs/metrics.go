// Package obs is the observability substrate: a zero-dependency metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// quantile extraction), Prometheus text-format exposition, and
// context-propagated request tracing with a slow-operation log.
//
// The registry is the passive half: layers register named metrics once
// (duplicate names panic — they would silently split one series into two)
// and observe into them on hot paths with a single atomic add. Exposition
// walks the registry at scrape time, so collector functions (GaugeFunc /
// CounterFunc) can surface counters that already live elsewhere — the
// engine's I/O stats, the checkout cache's hit counters — without any
// mirroring on the hot path.
//
// The tracer is the active half: see trace.go.
//
// Every observe/record method is nil-receiver-safe, so instrumented layers
// (the WAL, the data models) accept optional metric handles and never need
// nil checks at call sites.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default histogram layout for operation latencies in
// seconds: a 1-2-5 ladder from 1µs to 10s. The ~2× bucket resolution is fine
// enough to separate a cache hit (µs) from a cold materialization (100s of
// µs) or a disk fsync (ms).
var LatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2e-1, 5e-1,
	1, 2.5, 5, 10,
}

// SizeBuckets is the default histogram layout for byte sizes: powers of four
// from 64 B to 64 MiB (the WAL frame limit is 256 MiB; anything beyond the
// last bound lands in +Inf).
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536,
	262144, 1048576, 4194304, 16777216, 67108864,
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and nil receivers.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n must be >= 0 for Prometheus semantics;
// negative deltas are not checked, just don't).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Safe for concurrent use and nil
// receivers.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition (Prometheus layout); observation is one atomic add into the
// first bucket whose upper bound holds the value, plus count and sum. The
// unit is whatever the caller observes — seconds for latencies
// (ObserveDuration), bytes for sizes (Observe).
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra slot: the +Inf overflow bucket
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	// overflowMax tracks the largest value observed into the +Inf overflow
	// bucket, so quantiles whose rank lands there report a real outlier
	// magnitude instead of silently clamping to the last finite bound.
	overflowMax atomicFloat
}

// NewHistogram builds an unregistered histogram over the given ascending
// bucket upper bounds (callers that only want quantiles — the bench tools —
// use this directly; servers register through a Registry).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d (%g <= %g)", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	if i == len(h.bounds) { // +Inf overflow bucket
		h.overflowMax.max(v)
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// snapshot copies the cumulative bucket counts (len(bounds)+1, last is +Inf)
// and the total. Observations racing the copy may skew one bucket by one —
// irrelevant for exposition and quantiles.
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, the same estimate
// histogram_quantile() gives in PromQL. Ranks landing in the +Inf overflow
// bucket report the largest overflow value observed, so p99 of an
// outlier-heavy series is not understated. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf overflow bucket
			if m := h.overflowMax.load(); m > h.bounds[len(h.bounds)-1] {
				return m
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		var below int64
		if i > 0 {
			lo = h.bounds[i-1]
			below = cum[i-1]
		}
		inBucket := float64(c - below)
		if inBucket == 0 {
			return h.bounds[i]
		}
		return lo + (h.bounds[i]-lo)*(rank-float64(below))/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// QuantileDuration is Quantile for second-unit histograms, as a Duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second))
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// max raises the stored value to v if v is larger.
func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labels []string // values, aligned with family.labelNames
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // scrape-time collector (counter or gauge kind)
}

// family is one named metric: its help, type, label schema, and series.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	bounds     []float64 // histogram families

	mu     sync.Mutex
	series map[string]*series // key: joined label values
	order  []string           // insertion order for stable exposition
}

func (f *family) get(values []string, make func() *series) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	s.labels = append([]string(nil), values...)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func labelKey(values []string) string {
	out := ""
	for _, v := range values {
		out += v + "\x00"
	}
	return out
}

// Registry holds named metric families. One Registry per Store; the HTTP
// layer serves it on GET /metrics. All methods are safe for concurrent use.
// Registering two metrics under one name panics: it is a programming error
// that would otherwise corrupt the series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on duplicate or invalid names.
func (r *Registry) register(name, help string, kind metricKind, labelNames []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		bounds:     bounds,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram registers and returns an unlabeled histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, bounds)
	return f.get(nil, func() *series { return &series{h: NewHistogram(bounds)} }).h
}

// CounterFunc registers a scrape-time collector exposed as a counter: fn is
// called on every exposition. Use it to surface cumulative counters that
// already live elsewhere (engine stats, cache stats) without hot-path
// mirroring.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a scrape-time collector exposed as a gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// CounterVec is a counter family with labels; children are created on first
// use.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labelNames, nil)}
}

// With returns the child counter for the given label values (created on
// first use). The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() *series { return &series{c: &Counter{}} }).c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() *series { return &series{g: &Gauge{}} }).g
}

// HistogramVec is a histogram family with labels; every child shares the
// family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family over bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelNames, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() *series { return &series{h: NewHistogram(v.f.bounds)} }).h
}

// Sample is one scalar reading taken from the registry: counters and gauges
// flatten to one sample each, histograms expand to _count, _sum, and
// interpolated _p50/_p95/_p99 samples per labeled series. Name carries any
// suffix; Labels is the rendered Prometheus label set ("" when unlabeled),
// so Name+Labels is a stable series identity across scrapes.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// histQuantileSuffixes pairs the exported per-histogram digest samples with
// their quantiles.
var histQuantileSuffixes = []struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p95", 0.95},
	{"_p99", 0.99},
}

// Samples flattens every registered family into scalar samples, calling
// scrape-time collector functions as it goes. Families and series appear in
// registration order, so repeated calls yield stable series ordering.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		sers := make([]*series, 0, len(f.order))
		for _, k := range f.order {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range sers {
			ls := labelSet(f.labelNames, s.labels, "", "")
			switch {
			case s.fn != nil:
				out = append(out, Sample{Name: f.name, Labels: ls, Value: s.fn()})
			case s.c != nil:
				out = append(out, Sample{Name: f.name, Labels: ls, Value: float64(s.c.Value())})
			case s.g != nil:
				out = append(out, Sample{Name: f.name, Labels: ls, Value: float64(s.g.Value())})
			case s.h != nil:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: ls, Value: float64(s.h.Count())},
					Sample{Name: f.name + "_sum", Labels: ls, Value: s.h.Sum()})
				for _, pq := range histQuantileSuffixes {
					out = append(out, Sample{Name: f.name + pq.suffix, Labels: ls, Value: s.h.Quantile(pq.q)})
				}
			}
		}
	}
	return out
}
