package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer captures per-request traces: a root span started by the HTTP
// middleware (or a bench driver), with nested timed spans opened by each
// layer the request passes through — SQL parse/execute, checkout cache
// lookup, bitmap resolution, record fetch, WAL append. Finished traces land
// in a fixed-size ring of recent traces; traces whose total duration crosses
// the slow threshold additionally land in the slow ring, which GET
// /debug/traces serves as JSON.
//
// Span handles are nil-safe: code holding a context with no active trace
// gets nil spans back from StartSpan and every method on them is a no-op, so
// uninstrumented entry points (library use, tests) pay nothing.
type Tracer struct {
	threshold atomic.Int64 // nanoseconds; traces at or above land in slow ring
	slowTotal Counter      // cumulative count of slow traces

	mu     sync.Mutex
	recent *traceRing
	slow   *traceRing

	// OnSlow, when set before use, is invoked (outside the ring lock) for
	// every trace crossing the threshold — the server points it at its
	// structured log.
	OnSlow func(TraceData)
}

// DefaultSlowThreshold flags operations slower than 250ms — an order of
// magnitude above a cold multi-version checkout on the paper-scale datasets.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewTracer builds a tracer keeping the last `recent` finished traces and
// the last `slow` threshold-crossing traces (both capped at sane minimums).
func NewTracer(recent, slow int, threshold time.Duration) *Tracer {
	if recent < 1 {
		recent = 1
	}
	if slow < 1 {
		slow = 1
	}
	t := &Tracer{recent: newTraceRing(recent), slow: newTraceRing(slow)}
	t.threshold.Store(int64(threshold))
	return t
}

// SetSlowThreshold changes the slow-trace threshold at runtime (tests set it
// to 0 to capture everything).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.threshold.Store(int64(d)) }

// SlowThreshold returns the current slow-trace threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.threshold.Load()) }

// SlowCount returns how many traces have crossed the threshold so far.
func (t *Tracer) SlowCount() int64 { return t.slowTotal.Value() }

// Span is one timed region of a trace. Create children with StartSpan on the
// context returned by the parent. All methods are nil-safe.
type Span struct {
	trace  *activeTrace
	parent *Span

	name     string
	start    time.Time
	duration time.Duration // set by End, guarded by trace.mu
	attrs    []attr
	children []*Span
	ended    bool
}

type attr struct{ k, v string }

// activeTrace is the in-flight tree; it flattens to TraceData when the root
// span ends.
type activeTrace struct {
	tracer *Tracer
	id     string
	mu     sync.Mutex // guards every span's mutable fields
	root   *Span
}

type ctxKey int

const spanCtxKey ctxKey = 0

// StartTrace opens a new trace rooted at a span named name and returns a
// context carrying it. The returned context must flow into every layer that
// should contribute spans; call End on the root to finish the trace.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	at := &activeTrace{tracer: t, id: newTraceID()}
	root := &Span{trace: at, name: name, start: time.Now()}
	at.root = root
	return context.WithValue(ctx, spanCtxKey, root), root
}

// StartSpan opens a child of the span carried by ctx. When ctx carries no
// trace it returns (ctx, nil) and the nil span's methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey).(*Span)
	if parent == nil {
		return ctx, nil
	}
	at := parent.trace
	s := &Span{trace: at, parent: parent, name: name, start: time.Now()}
	at.mu.Lock()
	parent.children = append(parent.children, s)
	at.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey, s), s
}

// TraceID returns the trace ID carried by ctx, or "" when untraced.
func TraceID(ctx context.Context) string {
	if s, _ := ctx.Value(spanCtxKey).(*Span); s != nil {
		return s.trace.id
	}
	return ""
}

// ID returns the owning trace's ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.trace.id
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, attr{k, v})
	s.trace.mu.Unlock()
}

// End closes the span. Ending the root span finishes the trace: it is
// snapshotted into the recent ring and, past the threshold, the slow ring.
// Double-End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	at := s.trace
	at.mu.Lock()
	if s.ended {
		at.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	isRoot := s.parent == nil
	var data TraceData
	if isRoot {
		data = at.snapshotLocked()
	}
	at.mu.Unlock()
	if !isRoot {
		return
	}
	t := at.tracer
	slow := data.DurationNanos >= t.threshold.Load()
	t.mu.Lock()
	t.recent.push(data)
	if slow {
		t.slow.push(data)
	}
	t.mu.Unlock()
	if slow {
		t.slowTotal.Inc()
		if t.OnSlow != nil {
			t.OnSlow(data)
		}
	}
}

// TraceData is an immutable finished trace, shaped for JSON on
// GET /debug/traces.
type TraceData struct {
	ID            string    `json:"id"`
	Name          string    `json:"name"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"duration_ns"`
	Root          SpanData  `json:"root"`
}

// SpanData is one finished span in a TraceData tree. Offsets are relative to
// the trace start so a reader can lay spans on one timeline.
type SpanData struct {
	Name          string            `json:"name"`
	OffsetNanos   int64             `json:"offset_ns"`
	DurationNanos int64             `json:"duration_ns"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Children      []SpanData        `json:"children,omitempty"`
}

func (at *activeTrace) snapshotLocked() TraceData {
	root := at.root
	return TraceData{
		ID:            at.id,
		Name:          root.name,
		Start:         root.start,
		DurationNanos: int64(root.duration),
		Root:          snapshotSpanLocked(root, root.start),
	}
}

func snapshotSpanLocked(s *Span, origin time.Time) SpanData {
	d := SpanData{
		Name:          s.name,
		OffsetNanos:   int64(s.start.Sub(origin)),
		DurationNanos: int64(s.duration),
	}
	if !s.ended {
		// A child left open when the root ends is reported as running until
		// trace end rather than with a zero duration.
		d.DurationNanos = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.k] = a.v
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, snapshotSpanLocked(c, origin))
	}
	return d
}

// Snapshot returns the retained traces, newest first.
type Snapshot struct {
	SlowThresholdNanos int64       `json:"slow_threshold_ns"`
	SlowTotal          int64       `json:"slow_total"`
	Slow               []TraceData `json:"slow"`
	Recent             []TraceData `json:"recent"`
}

// Snapshot copies the current recent and slow rings, newest first.
func (t *Tracer) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Snapshot{
		SlowThresholdNanos: t.threshold.Load(),
		SlowTotal:          t.slowTotal.Value(),
		Slow:               t.slow.newestFirst(),
		Recent:             t.recent.newestFirst(),
	}
}

// traceRing is a fixed-capacity overwrite-oldest buffer.
type traceRing struct {
	buf  []TraceData
	next int
	full bool
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]TraceData, n)} }

func (r *traceRing) push(d TraceData) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *traceRing) newestFirst() []TraceData {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

var traceCounter atomic.Uint64

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// process-local counter rather than failing the request.
		n := traceCounter.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
