package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceNestedSpans(t *testing.T) {
	tr := NewTracer(8, 8, time.Hour)
	ctx, root := tr.StartTrace(context.Background(), "GET /api/v1/checkout")
	root.SetAttr("dataset", "demo")

	cctx, cache := StartSpan(ctx, "checkout.cache")
	_, bitmap := StartSpan(cctx, "bitmap.resolve")
	bitmap.End()
	_, fetch := StartSpan(cctx, "record.fetch")
	fetch.SetAttr("rows", "42")
	fetch.End()
	cache.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(snap.Recent))
	}
	td := snap.Recent[0]
	if td.ID == "" || len(td.ID) != 16 {
		t.Fatalf("bad trace id %q", td.ID)
	}
	if td.Name != "GET /api/v1/checkout" || td.Root.Attrs["dataset"] != "demo" {
		t.Fatalf("root mangled: %+v", td.Root)
	}
	if len(td.Root.Children) != 1 || td.Root.Children[0].Name != "checkout.cache" {
		t.Fatalf("cache span missing: %+v", td.Root.Children)
	}
	kids := td.Root.Children[0].Children
	if len(kids) != 2 || kids[0].Name != "bitmap.resolve" || kids[1].Name != "record.fetch" {
		t.Fatalf("nested spans wrong: %+v", kids)
	}
	if kids[1].Attrs["rows"] != "42" {
		t.Fatalf("span attr lost: %+v", kids[1])
	}
	if len(snap.Slow) != 0 {
		t.Fatalf("trace under threshold landed in slow ring: %+v", snap.Slow)
	}
}

func TestSlowTraceCaptured(t *testing.T) {
	tr := NewTracer(8, 8, 0) // threshold 0: everything is slow
	var hooked TraceData
	tr.OnSlow = func(d TraceData) { hooked = d }

	ctx, root := tr.StartTrace(context.Background(), "slow-op")
	_, s := StartSpan(ctx, "inner")
	s.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Slow) != 1 || snap.Slow[0].Name != "slow-op" {
		t.Fatalf("slow ring = %+v, want the slow-op trace", snap.Slow)
	}
	if snap.SlowTotal != 1 || tr.SlowCount() != 1 {
		t.Fatalf("slow total = %d, want 1", snap.SlowTotal)
	}
	if hooked.Name != "slow-op" {
		t.Fatalf("OnSlow hook got %+v", hooked)
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("StartSpan without a trace must return a nil span")
	}
	s.SetAttr("k", "v")
	s.End() // must not panic
	if TraceID(ctx) != "" {
		t.Fatalf("TraceID on untraced ctx = %q, want empty", TraceID(ctx))
	}
	var nilTracer *Tracer
	ctx2, root := nilTracer.StartTrace(context.Background(), "x")
	if root != nil || TraceID(ctx2) != "" {
		t.Fatal("nil tracer must produce nil spans")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(2, 2, time.Hour)
	for _, name := range []string{"a", "b", "c"} {
		_, root := tr.StartTrace(context.Background(), name)
		root.End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 2 || snap.Recent[0].Name != "c" || snap.Recent[1].Name != "b" {
		t.Fatalf("ring = %+v, want newest-first [c b]", snap.Recent)
	}
}

func TestUnendedChildReported(t *testing.T) {
	tr := NewTracer(2, 2, time.Hour)
	ctx, root := tr.StartTrace(context.Background(), "leaky")
	StartSpan(ctx, "never-ended")
	time.Sleep(time.Millisecond)
	root.End()
	snap := tr.Snapshot()
	kid := snap.Recent[0].Root.Children[0]
	if kid.Name != "never-ended" || kid.DurationNanos <= 0 {
		t.Fatalf("unended child should report elapsed time: %+v", kid)
	}
}

func TestSlowThresholdRuntimeChange(t *testing.T) {
	tr := NewTracer(4, 4, time.Hour)
	_, r1 := tr.StartTrace(context.Background(), "fast")
	r1.End()
	tr.SetSlowThreshold(0)
	_, r2 := tr.StartTrace(context.Background(), "now-slow")
	r2.End()
	snap := tr.Snapshot()
	if len(snap.Slow) != 1 || snap.Slow[0].Name != "now-slow" {
		t.Fatalf("slow ring = %+v, want only now-slow", snap.Slow)
	}
}
