package orpheusdb

import (
	"context"

	"orpheusdb/internal/core"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/wal"
)

// Observability. Every Store owns one metrics registry and one tracer
// (per-store rather than process-global, so tests and embedded multi-store
// processes never collide on metric names). The versioned operations —
// checkout, commit, merge, SQL — observe latency histograms on the hot path
// with a single atomic add; everything that already keeps its own counters
// (engine I/O stats, the checkout cache, the WAL) is exported through
// scrape-time collector functions instead of mirrored writes. The HTTP layer
// serves the registry on GET /metrics and the tracer's slow-trace ring on
// GET /debug/traces.

// storeObs bundles the store's observability handles. Built once in
// newStore, then read-only.
type storeObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	// core carries the histogram handles the CVDs observe into
	// (checkout hit/miss, commit).
	core *core.Metrics

	mergeSeconds            *obs.Histogram
	sqlParseSeconds         *obs.Histogram
	sqlExecSeconds          *obs.Histogram
	walAppendBytes          *obs.Histogram
	walFsyncSeconds         *obs.Histogram
	partitionMigrateSeconds *obs.Histogram
}

func newStoreObs() *storeObs {
	reg := obs.NewRegistry()
	checkout := reg.HistogramVec("orpheus_checkout_seconds",
		"Checkout latency by cache outcome (single- and multi-version).",
		obs.LatencyBuckets, "result")
	return &storeObs{
		reg:    reg,
		tracer: obs.NewTracer(64, 64, obs.DefaultSlowThreshold),
		core: &core.Metrics{
			CheckoutHit:  checkout.With("hit"),
			CheckoutMiss: checkout.With("miss"),
			Commit: reg.Histogram("orpheus_commit_seconds",
				"Core commit latency: record hash matching, model write, version metadata.",
				obs.LatencyBuckets),
		},
		mergeSeconds: reg.Histogram("orpheus_merge_seconds",
			"Three-way merge latency: LCA discovery, bitmap formula, merge commit.",
			obs.LatencyBuckets),
		sqlParseSeconds: reg.Histogram("orpheus_sql_parse_seconds",
			"SQL parse latency.", obs.LatencyBuckets),
		sqlExecSeconds: reg.Histogram("orpheus_sql_execute_seconds",
			"SQL execution latency (version resolution and engine run, parse excluded).",
			obs.LatencyBuckets),
		walAppendBytes: reg.Histogram("orpheus_wal_append_bytes",
			"Framed size of WAL appends.", obs.SizeBuckets),
		walFsyncSeconds: reg.Histogram("orpheus_wal_fsync_seconds",
			"WAL fsync latency (per-append under the always policy, background under interval).",
			obs.LatencyBuckets),
		partitionMigrateSeconds: reg.Histogram("orpheus_partition_migrate_seconds",
			"End-to-end latency of one background repartitioning (plan + all batches).",
			obs.LatencyBuckets),
	}
}

// registerCollectors exports the store's pre-existing counters — engine I/O
// stats, checkout-cache stats, WAL watermarks — as scrape-time collector
// functions. Called once from newStore, after the Store is assembled, since
// the closures capture s.
func (s *Store) registerCollectors() {
	reg := s.obs.reg
	stats := s.db.Stats()
	counter := func(name, help string, v func() int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v()) })
	}
	gauge := func(name, help string, v func() int64) {
		reg.GaugeFunc(name, help, func() float64 { return float64(v()) })
	}

	counter("orpheus_engine_seq_pages_total", "Pages fetched by sequential scans.", stats.SeqPages.Load)
	counter("orpheus_engine_rand_pages_total", "Pages fetched by random access (index probes).", stats.RandPages.Load)
	counter("orpheus_engine_rows_scanned_total", "Rows materialized from pages.", stats.RowsScanned.Load)
	counter("orpheus_engine_index_probes_total", "Index lookups performed.", stats.IndexProbes.Load)
	counter("orpheus_engine_hash_builds_total", "Rows inserted into transient hash tables.", stats.HashBuilds.Load)
	counter("orpheus_checkpoints_total", "Snapshot checkpoints taken.", stats.Checkpoints.Load)
	counter("orpheus_checkpoint_bytes_total", "Cumulative estimated snapshot bytes checkpointed.", stats.CheckpointBytes.Load)
	counter("orpheus_branch_creates_total", "Branches created.", stats.BranchCreates.Load)
	counter("orpheus_merges_total", "Merges attempted.", stats.Merges.Load)
	counter("orpheus_merge_conflicts_total", "Record-level merge conflicts detected.", stats.MergeConflicts.Load)

	counter("orpheus_partition_migrations_total", "Background repartitionings executed.", stats.PartitionMigrations.Load)
	counter("orpheus_partition_batches_total", "Migration batches applied (each one brief critical section).", stats.PartitionBatches.Load)
	counter("orpheus_partition_rows_moved_total", "Records inserted or deleted by migration batches.", stats.PartitionRowsMoved.Load)
	gauge("orpheus_partition_optimizer_running", "1 while the background partition optimizer is started.", func() int64 {
		if s.optimizer.Load() != nil {
			return 1
		}
		return 0
	})

	counter("orpheus_cache_hits_total", "Checkout-cache hits.", func() int64 { return s.cache.Stats().Hits })
	counter("orpheus_cache_misses_total", "Checkout-cache misses.", func() int64 { return s.cache.Stats().Misses })
	counter("orpheus_cache_evictions_total", "Checkout-cache evictions under byte-budget pressure.", func() int64 { return s.cache.Stats().Evictions })
	counter("orpheus_cache_invalidations_total", "Checkout-cache dataset invalidations.", func() int64 { return s.cache.Stats().Invalidations })
	gauge("orpheus_cache_entries", "Entries resident in the checkout cache.", func() int64 { return int64(s.cache.Stats().Entries) })
	gauge("orpheus_cache_bytes", "Bytes resident in the checkout cache.", func() int64 { return s.cache.Stats().Bytes })
	gauge("orpheus_cache_budget_bytes", "Checkout-cache byte budget.", func() int64 { return s.cache.Stats().Budget })

	gauge("orpheus_wal_enabled", "1 when a write-ahead log is attached.", func() int64 {
		if s.WALEnabled() {
			return 1
		}
		return 0
	})
	gauge("orpheus_wal_applied_lsn", "Last mutation both applied and logged.", func() int64 { return int64(s.db.WalLSN()) })
	gauge("orpheus_wal_checkpoint_lsn", "Watermark covered by the last successful checkpoint.", func() int64 { return int64(s.ckptLSN.Load()) })

	gauge("orpheus_datasets", "CVDs registered in the store.", func() int64 { return int64(len(s.List())) })
	counter("orpheus_slow_traces_total", "Traces that crossed the slow-operation threshold.", s.obs.tracer.SlowCount)
}

// Metrics returns the store's metrics registry — the HTTP layer serves it on
// GET /metrics, and embedders can register their own metrics on it.
func (s *Store) Metrics() *obs.Registry { return s.obs.reg }

// Tracer returns the store's request tracer (slow-operation threshold,
// /debug/traces snapshots).
func (s *Store) Tracer() *obs.Tracer { return s.obs.tracer }

// logMutationCtx is logMutation under a trace: the WAL append (fsync
// included, policy permitting) contributes a "wal.append" span.
func (s *Store) logMutationCtx(ctx context.Context, rec *wal.Record) error {
	if s.wal == nil {
		return nil
	}
	_, span := obs.StartSpan(ctx, "wal.append")
	err := s.logMutation(rec)
	span.End()
	return err
}
