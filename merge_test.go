package orpheusdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"orpheusdb/internal/bitmap"
)

// formulaMembers re-derives the merge formula independently of the merge
// package: (ours ∩ theirs) ∪ (ours − base) ∪ (theirs − base).
func formulaMembers(base, ours, theirs *bitmap.Bitmap) *bitmap.Bitmap {
	return bitmap.Or(bitmap.And(ours, theirs),
		bitmap.Or(bitmap.AndNot(ours, base), bitmap.AndNot(theirs, base)))
}

// Functional coverage of the branch & merge subsystem through the Go API and
// the SQL surface, plus snapshot persistence of the branch registry. The
// randomized DAG properties live in merge_property_test.go; the HTTP surface
// is covered in internal/server; the CLI in cmd/orpheus.

func mergeStore(t *testing.T) (*Store, *Dataset) {
	t.Helper()
	s := NewStore()
	d, err := s.Init("prot", []Column{
		{Name: "id", Type: KindInt},
		{Name: "val", Type: KindString},
	}, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func commitRows(t *testing.T, d *Dataset, parents []VersionID, msg string, pairs ...any) VersionID {
	t.Helper()
	var rows []Row
	for i := 0; i < len(pairs); i += 2 {
		rows = append(rows, Row{Int(int64(pairs[i].(int))), String(pairs[i+1].(string))})
	}
	v, err := d.Commit(rows, parents, msg)
	if err != nil {
		t.Fatalf("commit %q: %v", msg, err)
	}
	return v
}

func rowMap(t *testing.T, d *Dataset, v VersionID) map[int64]string {
	t.Helper()
	rows, err := d.Checkout(v)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]string, len(rows))
	for _, r := range rows {
		out[r[0].I] = r[1].S
	}
	return out
}

func TestBranchLifecycle(t *testing.T) {
	s, d := mergeStore(t)
	v1 := commitRows(t, d, nil, "v1", 1, "a", 2, "b")
	v2 := commitRows(t, d, []VersionID{v1}, "v2", 1, "a", 2, "b", 3, "c")

	b, err := d.CreateBranch("dev", v1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Head != v1 || b.Lineage.Cardinality() != 1 || !b.Lineage.Contains(int64(v1)) {
		t.Fatalf("branch = %+v", b)
	}
	// Default anchor is the latest version.
	if b, err = d.CreateBranch("main", 0); err != nil || b.Head != v2 {
		t.Fatalf("main = %+v, %v", b, err)
	}
	if got := d.Branches(); len(got) != 2 || got[0].Name != "dev" || got[1].Name != "main" {
		t.Fatalf("branches = %+v", got)
	}
	// Lineage covers head + ancestors.
	if got, _ := d.Branch("main"); got.Lineage.Cardinality() != 2 {
		t.Fatalf("main lineage = %v", got.Lineage.ToSlice())
	}
	// Ref resolution: ids and names.
	if v, err := d.ResolveRef("dev"); err != nil || v != v1 {
		t.Fatalf("ResolveRef(dev) = %d, %v", v, err)
	}
	if v, err := d.ResolveRef("2"); err != nil || v != v2 {
		t.Fatalf("ResolveRef(2) = %d, %v", v, err)
	}
	if _, err := d.ResolveRef("ghost"); err == nil {
		t.Fatal("unknown ref resolved")
	}
	// Overflowing numeric refs must error, not wrap into a valid id.
	if _, err := d.ResolveRef("18446744073709551617"); err == nil {
		t.Fatal("overflowing ref resolved")
	}
	// Padded branch refs resolve (and, in Merge, still advance the branch).
	if v, err := d.ResolveRef(" dev "); err != nil || v != v1 {
		t.Fatalf("ResolveRef(' dev ') = %d, %v", v, err)
	}
	// Duplicate, numeric, and malformed names are rejected.
	if _, err := d.CreateBranch("dev", v1); err == nil {
		t.Fatal("duplicate branch allowed")
	}
	if _, err := d.CreateBranch("42", v1); err == nil {
		t.Fatal("numeric branch name allowed")
	}
	if _, err := d.CreateBranch("a,b", v1); err == nil {
		t.Fatal("comma in branch name allowed")
	}
	if _, err := d.CreateBranch("orphan", VersionID(99)); err == nil {
		t.Fatal("branch at missing version allowed")
	}
	if err := d.DeleteBranch("dev"); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteBranch("dev"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if got := s.DB().Stats().Snapshot().BranchCreates; got != 2 {
		t.Fatalf("BranchCreates = %d, want 2", got)
	}
}

func TestMergeDisjointAndFastForward(t *testing.T) {
	_, d := mergeStore(t)
	v1 := commitRows(t, d, nil, "v1", 1, "a")
	v2 := commitRows(t, d, []VersionID{v1}, "v2", 1, "a", 2, "b")

	// theirs ancestor of ours: up to date, no new version.
	res, err := d.Merge("2", "1", MergeFail, "")
	if err != nil || !res.UpToDate || res.Version != v2 {
		t.Fatalf("up-to-date merge = %+v, %v", res, err)
	}
	// ours ancestor of theirs: fast-forward, no new version.
	res, err = d.Merge("1", "2", MergeFail, "")
	if err != nil || !res.FastForward || res.Version != v2 {
		t.Fatalf("fast-forward merge = %+v, %v", res, err)
	}
	if n := len(d.Versions()); n != 2 {
		t.Fatalf("trivial merges created versions: %d", n)
	}

	// A branch fast-forwards its head.
	if _, err := d.CreateBranch("main", v1); err != nil {
		t.Fatal(err)
	}
	res, err = d.Merge("main", "2", MergeFail, "")
	if err != nil || !res.FastForward {
		t.Fatalf("branch ff = %+v, %v", res, err)
	}
	if b, _ := d.Branch("main"); b.Head != v2 || b.Lineage.Cardinality() != 2 {
		t.Fatalf("main after ff = %+v", b)
	}
}

func TestMergeThreeWayAndConflicts(t *testing.T) {
	s, d := mergeStore(t)
	v1 := commitRows(t, d, nil, "base", 1, "a", 2, "b", 3, "c")
	// ours: modify id=1, delete id=3, add id=4.
	v2 := commitRows(t, d, []VersionID{v1}, "ours", 1, "a2", 2, "b", 4, "d")
	// theirs: add id=5, keep the rest.
	v3 := commitRows(t, d, []VersionID{v1}, "theirs", 1, "a", 2, "b", 3, "c", 5, "e")

	res, err := d.Merge("2", "3", MergeFail, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != v1 || res.UpToDate || res.FastForward || len(res.Conflicts) != 0 {
		t.Fatalf("merge = %+v", res)
	}
	want := map[int64]string{1: "a2", 2: "b", 4: "d", 5: "e"} // 3 deleted by ours
	if got := rowMap(t, d, res.Version); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged rows = %v, want %v", got, want)
	}
	info, err := d.Info(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Parents) != 2 || info.Parents[0] != v2 || info.Parents[1] != v3 {
		t.Fatalf("merge parents = %v", info.Parents)
	}

	// Conflicting sides: both modify id=2 differently.
	v5 := commitRows(t, d, []VersionID{v1}, "ours2", 1, "a", 2, "B-ours", 3, "c")
	v6 := commitRows(t, d, []VersionID{v1}, "theirs2", 1, "a", 2, "B-theirs", 3, "c")
	res, err = d.Merge(fmt.Sprint(v5), fmt.Sprint(v6), MergeFail, "")
	if err == nil {
		t.Fatal("conflicting merge under fail policy succeeded")
	}
	var ce *MergeConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *MergeConflictError", err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind() != "modify/modify" || res.Conflicts[0].Key != "2" {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if res.Version != 0 {
		t.Fatalf("refused merge produced version %d", res.Version)
	}
	before := len(d.Versions())

	// ours / theirs policies resolve deterministically.
	res, err = d.Merge(fmt.Sprint(v5), fmt.Sprint(v6), MergeOurs, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowMap(t, d, res.Version)[2]; got != "B-ours" {
		t.Fatalf("ours policy kept %q", got)
	}
	res, err = d.Merge(fmt.Sprint(v5), fmt.Sprint(v6), MergeTheirs, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowMap(t, d, res.Version)[2]; got != "B-theirs" {
		t.Fatalf("theirs policy kept %q", got)
	}
	if got := len(d.Versions()); got != before+2 {
		t.Fatalf("policy merges added %d versions, want 2", got-before)
	}
	snap := s.DB().Stats().Snapshot()
	if snap.Merges < 3 || snap.MergeConflicts < 3 {
		t.Fatalf("merge stats = %+v", snap)
	}
}

// TestMergeRecordSetEqualsFormula pins the acceptance property directly:
// a conflict-free merge's rlist is exactly the bitmap formula.
func TestMergeRecordSetEqualsFormula(t *testing.T) {
	_, d := mergeStore(t)
	v1 := commitRows(t, d, nil, "base", 1, "a", 2, "b", 3, "c")
	v2 := commitRows(t, d, []VersionID{v1}, "ours", 2, "b", 3, "c", 4, "d")   // -1 +4
	v3 := commitRows(t, d, []VersionID{v1}, "theirs", 1, "a", 2, "b", 5, "e") // -3 +5

	res, err := d.Merge("2", "3", MergeFail, "")
	if err != nil {
		t.Fatal(err)
	}
	cvd := d.CVD()
	base, _ := cvd.RlistSet(v1)
	ours, _ := cvd.RlistSet(v2)
	theirs, _ := cvd.RlistSet(v3)
	merged, _ := cvd.RlistSet(res.Version)
	// merged = (ours ∩ theirs) ∪ (ours − base) ∪ (theirs − base)
	want := formulaMembers(base, ours, theirs)
	if !merged.Equal(want) {
		t.Fatalf("merged rlist %v != formula %v", merged.ToSlice(), want.ToSlice())
	}
}

func TestBranchPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.odb")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Init("p", []Column{{Name: "id", Type: KindInt}, {Name: "v", Type: KindString}},
		InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := commitRows(t, d, nil, "v1", 1, "a")
	commitRows(t, d, []VersionID{v1}, "v2", 1, "a", 2, "b")
	commitRows(t, d, []VersionID{v1}, "v3", 1, "a", 3, "c")
	if _, err := d.CreateBranch("main", 2); err != nil {
		t.Fatal(err)
	}
	res, err := d.Merge("main", "3", MergeFail, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.Dataset("p")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rd.Branch("main")
	if err != nil {
		t.Fatal(err)
	}
	if b.Head != res.Version {
		t.Fatalf("reloaded head = %d, want %d", b.Head, res.Version)
	}
	if !b.Lineage.Contains(int64(res.Version)) || !b.Lineage.Contains(int64(v1)) {
		t.Fatalf("reloaded lineage = %v", b.Lineage.ToSlice())
	}
	// The reloaded registry stays writable.
	if _, err := rd.CreateBranch("post", 0); err != nil {
		t.Fatal(err)
	}
}

func TestBranchSQLSurface(t *testing.T) {
	s, d := mergeStore(t)
	v1 := commitRows(t, d, nil, "v1", 1, "a", 2, "b")
	commitRows(t, d, []VersionID{v1}, "v2", 1, "a2", 2, "b")
	commitRows(t, d, []VersionID{v1}, "v3", 1, "a", 2, "b", 3, "c")

	res, err := s.Run("CREATE BRANCH main FROM VERSION 2 OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "main" || res.Rows[0][1].I != 2 {
		t.Fatalf("CREATE BRANCH result = %v", res.Rows)
	}
	// Default anchor: latest.
	if _, err := s.Run("CREATE BRANCH dev OF CVD prot"); err != nil {
		t.Fatal(err)
	}
	if b, _ := d.Branch("dev"); b.Head != 3 {
		t.Fatalf("dev head = %d", b.Head)
	}
	// Branch names resolve in version slots, including multi-version chains.
	res, err = s.Run("SELECT count(*) FROM VERSION main OF CVD prot")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("VERSION main scan = %v, %v", res, err)
	}
	res, err = s.Run("SELECT count(*) FROM VERSION dev EXCEPT 1 OF CVD prot")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("VERSION dev EXCEPT 1 = %v, %v", res, err)
	}
	// Merge through SQL, advancing the target branch.
	res, err = s.Run("MERGE VERSION dev INTO main OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	mergedVid := res.Rows[0][0].I
	if res.Cols[0] != "version" || mergedVid != 4 || res.Rows[0][1].I != 1 {
		t.Fatalf("MERGE result = %v %v", res.Cols, res.Rows)
	}
	if b, _ := d.Branch("main"); int64(b.Head) != mergedVid {
		t.Fatalf("main head = %d, want %d", b.Head, mergedVid)
	}
	// Conflicting merge: fail policy errors, USING theirs resolves.
	commitRows(t, d, []VersionID{v1}, "v5", 1, "x", 2, "b")
	commitRows(t, d, []VersionID{v1}, "v6", 1, "y", 2, "b")
	if _, err := s.Run("MERGE VERSION 6 INTO 5 OF CVD prot"); err == nil {
		t.Fatal("conflicting SQL merge succeeded under fail policy")
	}
	res, err = s.Run("MERGE VERSION 6 INTO 5 OF CVD prot USING theirs")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][2].I != 1 {
		t.Fatalf("conflict count = %v", res.Rows)
	}
	got := rowMap(t, d, VersionID(res.Rows[0][0].I))
	if got[1] != "y" {
		t.Fatalf("USING theirs kept %q", got[1])
	}
	// DROP BRANCH, and scripts mixing SQL with branch statements.
	if _, err := s.Run("DROP BRANCH dev OF CVD prot"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Branch("dev"); err == nil {
		t.Fatal("dev survived DROP BRANCH")
	}
	if _, err := s.RunScript("CREATE BRANCH scripted OF CVD prot; SELECT count(*) FROM VERSION scripted OF CVD prot"); err != nil {
		t.Fatal(err)
	}
	// Error surfaces: unknown branch, unknown policy, missing CVD, and the
	// nonsense zero anchor (which must not silently mean "latest").
	for _, bad := range []string{
		"MERGE VERSION ghost INTO main OF CVD prot",
		"MERGE VERSION 2 INTO 3 OF CVD prot USING wat",
		"CREATE BRANCH b FROM VERSION 1 OF CVD nope",
		"DROP BRANCH ghost OF CVD prot",
		"CREATE BRANCH zero FROM VERSION 0 OF CVD prot",
	} {
		if _, err := s.Run(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

// TestMergeKeylessDataset: without a primary key conflicts cannot exist and
// the merge is pure set algebra.
func TestMergeKeylessDataset(t *testing.T) {
	s := NewStore()
	d, err := s.Init("k", []Column{{Name: "v", Type: KindString}}, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := d.Commit([]Row{{String("a")}, {String("b")}}, nil, "v1")
	d.Commit([]Row{{String("a")}, {String("c")}}, []VersionID{v1}, "v2")
	d.Commit([]Row{{String("b")}, {String("d")}}, []VersionID{v1}, "v3")
	res, err := d.Merge("2", "3", MergeFail, "")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := d.Checkout(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	// a deleted by theirs, b deleted by ours → {c, d}.
	if len(rows) != 2 {
		t.Fatalf("keyless merge rows = %v", rows)
	}
}

// TestMergeAcrossModels runs a conflicted merge on every data model to pin
// the model-independence of the merge layer.
func TestMergeAcrossModels(t *testing.T) {
	for _, model := range []ModelKind{
		TablePerVersion, CombinedTable, SplitByVlist, SplitByRlist, DeltaBased, PartitionedRlist,
	} {
		t.Run(string(model), func(t *testing.T) {
			s := NewStore()
			d, err := s.Init("m", []Column{
				{Name: "id", Type: KindInt},
				{Name: "val", Type: KindString},
			}, InitOptions{Model: model, PrimaryKey: []string{"id"}})
			if err != nil {
				t.Fatal(err)
			}
			v1 := commitRows(t, d, nil, "base", 1, "a", 2, "b")
			commitRows(t, d, []VersionID{v1}, "ours", 1, "a-ours", 2, "b", 3, "c")
			commitRows(t, d, []VersionID{v1}, "theirs", 1, "a-theirs", 2, "b", 4, "d")
			if _, err := d.Merge("2", "3", MergeFail, ""); err == nil {
				t.Fatal("conflict not detected")
			}
			res, err := d.Merge("2", "3", MergeOurs, "")
			if err != nil {
				t.Fatal(err)
			}
			want := map[int64]string{1: "a-ours", 2: "b", 3: "c", 4: "d"}
			if got := rowMap(t, d, res.Version); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("merged rows = %v, want %v", got, want)
			}
		})
	}
}
