package orpheusdb

import (
	"fmt"
	"testing"
)

// TestCheckoutLatencyHistogramsSplitHitMiss commits a dataset large enough
// that materializing it measurably outweighs a cache lookup, then checks the
// two checkout histograms tell the story: the cold checkout lands in the miss
// series, the hot repeats land in the hit series, and the hit p50 sits below
// the miss p50 — the distribution pair /metrics exposes as
// orpheus_checkout_seconds{result=...}.
func TestCheckoutLatencyHistogramsSplitHitMiss(t *testing.T) {
	s := NewStore()
	ds, err := s.Init("wide", []Column{
		{Name: "id", Type: KindInt},
		{Name: "payload", Type: KindString},
	}, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), String(fmt.Sprintf("payload-%06d", i))}
	}
	vid, err := ds.Commit(rows, nil, "bulk")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ds.Checkout(vid); err != nil { // cold: materializes
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // hot: served from the checkout cache
		if _, err := ds.Checkout(vid); err != nil {
			t.Fatal(err)
		}
	}

	hit, miss := s.obs.core.CheckoutHit, s.obs.core.CheckoutMiss
	if got := miss.Count(); got < 1 {
		t.Fatalf("miss histogram count = %d, want >= 1", got)
	}
	if got := hit.Count(); got < 20 {
		t.Fatalf("hit histogram count = %d, want >= 20", got)
	}
	hitP50, missP50 := hit.Quantile(0.50), miss.Quantile(0.50)
	if hitP50 <= 0 || missP50 <= 0 {
		t.Fatalf("degenerate p50s: hit %v, miss %v", hitP50, missP50)
	}
	if hitP50 >= missP50 {
		t.Fatalf("hot checkout p50 (%.6fs) not below cold checkout p50 (%.6fs)", hitP50, missP50)
	}
	if c := s.CacheStats(); c.Hits < 20 || c.Misses < 1 {
		t.Fatalf("cache counters disagree with histograms: %+v", c)
	}
}
