package orpheusdb

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// docs_test executes every ```sql block of docs/SQL.md, in document order,
// against the store documented in its Setup section. Blocks whose first line
// is `-- error` must fail; all others must succeed. This keeps the SQL
// reference honest: an example that stops working breaks the build.

// sqlDocStore builds exactly the store docs/SQL.md's Setup section promises.
func sqlDocStore(t *testing.T) *Store {
	t.Helper()
	store := NewStore()
	ds, err := store.Init("prot", []Column{
		{Name: "p1", Type: KindInt},
		{Name: "p2", Type: KindInt},
		{Name: "score", Type: KindFloat},
		{Name: "tag", Type: KindString},
	}, InitOptions{PrimaryKey: []string{"p1", "p2"}})
	if err != nil {
		t.Fatal(err)
	}
	v1rows := []Row{
		{Int(1), Int(1), Float(0.5), String("alpha")},
		{Int(2), Int(2), Float(0.9), String("beta")},
	}
	if _, err := ds.Commit(v1rows, nil, "v1"); err != nil {
		t.Fatal(err)
	}
	v2rows := append(append([]Row(nil), v1rows...),
		Row{Int(3), Int(3), Float(0.1), String("gamma")})
	if _, err := ds.Commit(v2rows, []VersionID{1}, "v2"); err != nil {
		t.Fatal(err)
	}
	v3rows := []Row{
		{Int(1), Int(1), Float(0.7), String("alpha")},
		{Int(2), Int(2), Float(0.9), String("beta")},
	}
	if _, err := ds.Commit(v3rows, []VersionID{1}, "v3"); err != nil {
		t.Fatal(err)
	}
	v4rows := []Row{
		{Int(1), Int(1), Float(0.95), String("alpha")},
		{Int(2), Int(2), Float(0.9), String("beta")},
	}
	if _, err := ds.Commit(v4rows, []VersionID{1}, "v4"); err != nil {
		t.Fatal(err)
	}
	return store
}

// sqlBlocks extracts the fenced ```sql blocks of a markdown file in order.
func sqlBlocks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var blocks []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "```sql"):
			in = true
			cur = nil
		case in && strings.HasPrefix(line, "```"):
			in = false
			blocks = append(blocks, strings.TrimSpace(strings.Join(cur, "\n")))
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatalf("%s: unterminated ```sql block", path)
	}
	return blocks
}

func TestSQLDocExamplesExecute(t *testing.T) {
	store := sqlDocStore(t)
	blocks := sqlBlocks(t, "docs/SQL.md")
	if len(blocks) < 20 {
		t.Fatalf("only %d sql blocks found in docs/SQL.md — extraction broken?", len(blocks))
	}
	for i, block := range blocks {
		wantErr := false
		if first, rest, ok := strings.Cut(block, "\n"); ok && strings.TrimSpace(first) == "-- error" {
			wantErr = true
			block = rest
		} else if strings.TrimSpace(block) == "-- error" {
			t.Fatalf("block %d is only an error marker", i)
		}
		_, err := store.Run(block)
		if wantErr && err == nil {
			t.Errorf("docs/SQL.md block %d should fail but succeeded:\n%s", i, block)
		}
		if !wantErr && err != nil {
			t.Errorf("docs/SQL.md block %d failed: %v\n%s", i, err, block)
		}
	}
}

// TestSQLDocClaimedResults pins the result values the prose of docs/SQL.md
// asserts, so the numbers in the document cannot drift from reality.
func TestSQLDocClaimedResults(t *testing.T) {
	store := sqlDocStore(t)
	counts := []struct {
		sql  string
		want int64
	}{
		{"SELECT count(*) FROM VERSION 1 OF CVD prot", 2},
		{"SELECT count(*) FROM VERSION 1 INTERSECT 2 OF CVD prot", 2},
		{"SELECT count(*) FROM VERSION 2 EXCEPT 1 OF CVD prot", 1},
		{"SELECT count(*) FROM VERSION 1 UNION 2 UNION 3 OF CVD prot", 4},
	}
	for _, c := range counts {
		res, err := store.Run(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got := res.Rows[0][0].I; got != c.want {
			t.Errorf("%s = %d, want %d", c.sql, got, c.want)
		}
	}

	res, err := store.Run("SELECT vid, count(*) AS records FROM CVD prot GROUP BY vid ORDER BY vid")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 2}, {2, 3}, {3, 2}, {4, 2}}
	if len(res.Rows) != len(want) {
		t.Fatalf("all-versions counts: %d rows, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		if res.Rows[i][0].I != w[0] || res.Rows[i][1].I != w[1] {
			t.Errorf("row %d = (%d,%d), want (%d,%d)",
				i, res.Rows[i][0].I, res.Rows[i][1].I, w[0], w[1])
		}
	}

	res, err = store.Run("SELECT DISTINCT vid FROM CVD prot WHERE tag = 'alpha' AND score > 0.6 ORDER BY vid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 3 || res.Rows[1][0].I != 4 {
		t.Errorf("alpha>0.6 versions = %v, want 3 and 4", res.Rows)
	}

	res, err = store.Run("SELECT vid, avg(score) AS mean FROM CVD prot GROUP BY vid HAVING count(*) > 2 ORDER BY vid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("HAVING example = %v, want only version 2", res.Rows)
	}

	// Claims of the "Branches and merges" section.
	if _, err := store.Run("CREATE BRANCH main FROM VERSION 2 OF CVD prot"); err != nil {
		t.Fatal(err)
	}
	res, err = store.Run("MERGE VERSION 3 INTO main OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 5 || res.Rows[0][1].I != 1 || res.Rows[0][2].I != 0 {
		t.Errorf("merge into main = %v, want version 5, base 1, 0 conflicts", res.Rows)
	}
	res, err = store.Run("SELECT count(*) FROM VERSION main OF CVD prot")
	if err != nil || res.Rows[0][0].I != 3 {
		t.Errorf("merged main count = %v, %v; want 3", res.Rows, err)
	}
	if _, err := store.Run("MERGE VERSION 4 INTO 3 OF CVD prot"); err == nil {
		t.Error("modify/modify merge under fail policy should error")
	}
	res, err = store.Run("MERGE VERSION 4 INTO 3 OF CVD prot USING theirs")
	if err != nil || res.Rows[0][2].I != 1 {
		t.Errorf("USING theirs = %v, %v; want 1 resolved conflict", res, err)
	}
}

// TestArchitectureDocMatchesRoutes keeps docs/ARCHITECTURE.md's and the
// README's claims structurally honest where cheap: the files exist and name
// the packages that actually exist in the tree.
func TestArchitectureDocMatchesTree(t *testing.T) {
	data, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md missing: %v", err)
	}
	doc := string(data)
	for _, pkg := range []string{
		"internal/engine", "internal/bitmap", "internal/wal", "internal/cache",
		"internal/vgraph", "internal/partition", "internal/core", "internal/sql",
		"internal/server", "internal/merge",
	} {
		if !strings.Contains(doc, pkg) {
			t.Errorf("ARCHITECTURE.md does not mention %s", pkg)
		}
		if _, err := os.Stat(pkg); err != nil {
			t.Errorf("ARCHITECTURE.md names %s but it does not exist", pkg)
		}
	}
	for _, inv := range []string{"WAL-before-ack", "Cache-invalidate-in-critical-section", "canonical form"} {
		if !strings.Contains(doc, inv) {
			t.Errorf("ARCHITECTURE.md lost its %q invariant section", inv)
		}
	}
}

func ExampleStore_Run() {
	store := NewStore()
	ds, _ := store.Init("people", []Column{
		{Name: "id", Type: KindInt},
		{Name: "name", Type: KindString},
	}, InitOptions{PrimaryKey: []string{"id"}})
	ds.Commit([]Row{{Int(1), String("ada")}}, nil, "v1")
	res, _ := store.Run("SELECT count(*) FROM VERSION 1 OF CVD people")
	fmt.Println(res.Rows[0][0].I)
	// Output: 1
}
