package orpheusdb

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkDurability measures acknowledged-commit latency under each
// durability mode: the legacy synchronous full-snapshot rewrite versus WAL
// appends under each fsync policy. CI runs it with -benchtime=1x as a smoke
// test; `orpheus-bench durability` produces the full trajectory
// (BENCH_wal.json).
func BenchmarkDurability(b *testing.B) {
	const rowsPer = 50
	modes := []struct {
		name   string
		policy FsyncPolicy
		wal    bool
	}{
		{"snapshot-sync", 0, false},
		{"wal-always", FsyncAlways, true},
		{"wal-interval", FsyncInterval, true},
		{"wal-off", FsyncOff, true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			s, err := OpenStore(filepath.Join(b.TempDir(), "bench.odb"))
			if err != nil {
				b.Fatal(err)
			}
			if mode.wal {
				if err := s.EnableWAL(WALConfig{Policy: mode.policy}); err != nil {
					b.Fatal(err)
				}
				s.SetSaveDelay(time.Hour) // checkpoints off the measured path
			}
			d, err := s.Init("bench", []Column{
				{Name: "id", Type: KindInt},
				{Name: "payload", Type: KindString},
			}, InitOptions{PrimaryKey: []string{"id"}})
			if err != nil {
				b.Fatal(err)
			}
			var parent VersionID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows := make([]Row, rowsPer)
				for j := range rows {
					id := int64(i*rowsPer + j)
					rows[j] = Row{Int(id), String(fmt.Sprintf("payload-%d", id))}
				}
				var parents []VersionID
				if parent != 0 {
					parents = []VersionID{parent}
				}
				v, err := d.Commit(rows, parents, "bench")
				if err != nil {
					b.Fatal(err)
				}
				if !mode.wal {
					if err := s.Save(); err != nil {
						b.Fatal(err)
					}
				}
				parent = v
			}
			b.StopTimer()
			s.Flush()
		})
	}
}
