// Package orpheusdb is a Go reproduction of OrpheusDB (Huang et al., VLDB
// 2017): a dataset version control system that bolts git-style versioning
// onto a relational database while keeping the database itself unaware of
// versions. A Store wraps an embedded relational engine; Datasets (CVDs —
// collaborative versioned datasets) live inside it under one of the paper's
// data models; SQL queries run against specific versions via the
// VERSION ... OF CVD syntax; and the partition optimizer (LYRESPLIT) keeps
// checkouts fast as the version graph grows.
//
// Quick start:
//
//	store := orpheusdb.NewStore()
//	ds, _ := store.Init("prot", cols, orpheusdb.InitOptions{PrimaryKey: []string{"p1", "p2"}})
//	v1, _ := ds.Commit(rows, nil, "initial import")
//	rows2, _ := ds.Checkout(v1)
//	res, _ := store.Run("SELECT count(*) FROM VERSION 1 OF CVD prot")
package orpheusdb

import (
	"fmt"
	"os"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/sql"
	"orpheusdb/internal/vgraph"
)

// Re-exported identifiers so applications only import this package.
type (
	// VersionID identifies a version of a dataset.
	VersionID = vgraph.VersionID
	// RecordID identifies an immutable record.
	RecordID = vgraph.RecordID
	// Column describes one attribute.
	Column = engine.Column
	// Row is one tuple.
	Row = engine.Row
	// Value is one cell.
	Value = engine.Value
	// ModelKind selects a data model.
	ModelKind = core.ModelKind
	// VersionInfo is version-level metadata.
	VersionInfo = core.VersionInfo
	// Result is a query result.
	Result = sql.Result
)

// The data models of Section 3, plus the partitioned hybrid of Section 4.
const (
	TablePerVersion  = core.TablePerVersionModel
	CombinedTable    = core.CombinedTableModel
	SplitByVlist     = core.SplitByVlistModel
	SplitByRlist     = core.SplitByRlistModel
	DeltaBased       = core.DeltaModel
	PartitionedRlist = core.PartitionedRlistModel
)

// Value constructors, re-exported.
var (
	Int    = engine.IntValue
	Float  = engine.FloatValue
	String = engine.StringValue
	Bool   = engine.BoolValue
	Array  = engine.ArrayValue
	Null   = engine.NullValue
)

// Column kinds, re-exported.
const (
	KindInt      = engine.KindInt
	KindFloat    = engine.KindFloat
	KindString   = engine.KindString
	KindBool     = engine.KindBool
	KindIntArray = engine.KindIntArray
)

// Store is an OrpheusDB instance: an embedded relational database hosting any
// number of CVDs, a staging area, and user accounts.
type Store struct {
	db   *engine.DB
	path string
	user string
}

// NewStore creates an in-memory store.
func NewStore() *Store {
	return &Store{db: engine.NewDB(), user: "default"}
}

// OpenStore opens (or creates) a store persisted at path.
func OpenStore(path string) (*Store, error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			s := NewStore()
			s.path = path
			return s, nil
		}
		return nil, err
	}
	db, err := engine.Load(path)
	if err != nil {
		return nil, err
	}
	return &Store{db: db, path: path, user: "default"}, nil
}

// Save persists the store to its path (no-op for in-memory stores).
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	return s.db.Save(s.path)
}

// DB exposes the underlying engine database (for advanced use and tests).
func (s *Store) DB() *engine.DB { return s.db }

// SetUser switches the active user (config command).
func (s *Store) SetUser(name string) error {
	if name == "" {
		return fmt.Errorf("orpheusdb: empty user name")
	}
	s.user = name
	return nil
}

// WhoAmI returns the active user name.
func (s *Store) WhoAmI() string { return s.user }

// CreateUser registers a new user and switches to it.
func (s *Store) CreateUser(name string) error {
	if err := core.CreateUser(s.db, name); err != nil {
		return err
	}
	s.user = name
	return nil
}

// Users lists registered users.
func (s *Store) Users() []string { return core.Users(s.db) }

// InitOptions configures dataset creation.
type InitOptions struct {
	// Model selects the data model; defaults to split-by-rlist.
	Model ModelKind
	// PrimaryKey names the relation's key attributes.
	PrimaryKey []string
}

// Dataset is a handle to one CVD.
type Dataset struct {
	store *Store
	cvd   *core.CVD
}

// Init creates a new CVD.
func (s *Store) Init(name string, cols []Column, opts InitOptions) (*Dataset, error) {
	c, err := core.Init(s.db, name, cols, core.InitOptions{
		Model:      opts.Model,
		PrimaryKey: opts.PrimaryKey,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{store: s, cvd: c}, nil
}

// Dataset opens an existing CVD by name.
func (s *Store) Dataset(name string) (*Dataset, error) {
	c, err := core.Open(s.db, name)
	if err != nil {
		return nil, err
	}
	return &Dataset{store: s, cvd: c}, nil
}

// List names the CVDs in the store (ls command).
func (s *Store) List() []string { return core.ListCVDs(s.db) }

// Drop removes a CVD and all its versions (drop command).
func (s *Store) Drop(name string) error {
	c, err := core.Open(s.db, name)
	if err != nil {
		return err
	}
	return c.Drop()
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.cvd.Name() }

// Columns returns the dataset's current data attributes.
func (d *Dataset) Columns() []Column { return d.cvd.Columns() }

// PrimaryKey returns the relation's key attribute names.
func (d *Dataset) PrimaryKey() []string { return d.cvd.PrimaryKey() }

// Model returns the data model kind in use.
func (d *Dataset) Model() ModelKind { return d.cvd.Model().Kind() }

// Versions lists version ids in commit order.
func (d *Dataset) Versions() []VersionID { return d.cvd.Versions() }

// LatestVersion returns the most recent version id (0 if none).
func (d *Dataset) LatestVersion() VersionID { return d.cvd.LatestVersion() }

// Info returns a version's metadata.
func (d *Dataset) Info(v VersionID) (*VersionInfo, error) { return d.cvd.Info(v) }

// Commit adds a new version derived from parents and returns its id.
func (d *Dataset) Commit(rows []Row, parents []VersionID, msg string) (VersionID, error) {
	return d.cvd.Commit(rows, parents, msg)
}

// CommitWithSchema commits rows under a (possibly changed) schema,
// exercising the single-pool schema evolution of Section 3.3.
func (d *Dataset) CommitWithSchema(cols []Column, rows []Row, parents []VersionID, msg string) (VersionID, error) {
	return d.cvd.CommitWithSchema(cols, rows, parents, msg)
}

// Checkout materializes one or more versions as rows; with several versions
// records merge in precedence order under the primary key.
func (d *Dataset) Checkout(vids ...VersionID) ([]Row, error) {
	return d.cvd.Checkout(vids...)
}

// CheckoutToTable materializes versions into a staging table owned by the
// store's active user.
func (d *Dataset) CheckoutToTable(table string, vids ...VersionID) error {
	return d.cvd.CheckoutToTable(table, d.store.user, vids...)
}

// CommitTable commits a staged table back as a new version and removes it
// from the staging area.
func (d *Dataset) CommitTable(table, msg string) (VersionID, error) {
	return d.cvd.CommitTable(table, d.store.user, msg)
}

// Diff returns the rows only in a and only in b.
func (d *Dataset) Diff(a, b VersionID) (onlyA, onlyB []Row, err error) {
	return d.cvd.Diff(a, b)
}

// Ancestors returns all transitive ancestors of v.
func (d *Dataset) Ancestors(v VersionID) ([]VersionID, error) { return d.cvd.Ancestors(v) }

// Descendants returns all transitive descendants of v.
func (d *Dataset) Descendants(v VersionID) ([]VersionID, error) { return d.cvd.Descendants(v) }

// StorageBytes reports the dataset's model-owned storage.
func (d *Dataset) StorageBytes() int64 { return d.cvd.StorageBytes() }

// Optimize runs the partition optimizer (LYRESPLIT) under the storage budget
// γ = gammaFactor × |R| and migrates the partitioned layout. The dataset
// must use the PartitionedRlist model.
func (d *Dataset) Optimize(gammaFactor float64) (*core.OptimizeResult, error) {
	return d.cvd.Optimize(gammaFactor, false)
}

// OptimizeNaive is Optimize with rebuild-from-scratch migration (the
// baseline of Figures 14b/15b).
func (d *Dataset) OptimizeNaive(gammaFactor float64) (*core.OptimizeResult, error) {
	return d.cvd.Optimize(gammaFactor, true)
}

// CVD exposes the underlying core object for advanced use.
func (d *Dataset) CVD() *core.CVD { return d.cvd }

// SearchVersions returns the versions whose metadata satisfies pred, a
// version-graph shortcut query (Section 2.2).
func (d *Dataset) SearchVersions(pred func(*VersionInfo) bool) ([]VersionID, error) {
	var out []VersionID
	for _, v := range d.cvd.Versions() {
		info, err := d.cvd.Info(v)
		if err != nil {
			return nil, err
		}
		if pred(info) {
			out = append(out, v)
		}
	}
	return out, nil
}

// LastModified returns the most recent commit time across versions.
func (d *Dataset) LastModified() (time.Time, error) {
	var best time.Time
	for _, v := range d.cvd.Versions() {
		info, err := d.cvd.Info(v)
		if err != nil {
			return time.Time{}, err
		}
		if info.CommitTime.After(best) {
			best = info.CommitTime
		}
	}
	return best, nil
}

// OptimizeWeighted is Optimize under the weighted checkout cost of Appendix
// C.2: versions with higher freq land in smaller partitions. Missing
// versions default to weight 1.
func (d *Dataset) OptimizeWeighted(gammaFactor float64, freq map[VersionID]int64) (*core.OptimizeResult, error) {
	return d.cvd.OptimizeWeighted(gammaFactor, freq, false)
}

// RecencyWeights builds a checkout-frequency map weighting the most recent
// recentFraction of versions hot× more than the rest.
func (d *Dataset) RecencyWeights(recentFraction float64, hot int64) map[VersionID]int64 {
	return d.cvd.RecencyWeights(recentFraction, hot)
}

// MaintainPartitions runs the periodic partition check of Section 4.3:
// when the current checkout cost exceeds mu times the best LYRESPLIT can
// achieve under gammaFactor·|R|, the layout is migrated.
func (d *Dataset) MaintainPartitions(gammaFactor, mu float64) (*core.MaintenanceResult, error) {
	return d.cvd.MaintainPartitions(gammaFactor, mu, false)
}
