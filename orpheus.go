// Package orpheusdb is a Go reproduction of OrpheusDB (Huang et al., VLDB
// 2017): a dataset version control system that bolts git-style versioning
// onto a relational database while keeping the database itself unaware of
// versions. A Store wraps an embedded relational engine; Datasets (CVDs —
// collaborative versioned datasets) live inside it under one of the paper's
// data models; SQL queries run against specific versions via the
// VERSION ... OF CVD syntax; and the partition optimizer (LYRESPLIT) keeps
// checkouts fast as the version graph grows.
//
// Quick start:
//
//	store := orpheusdb.NewStore()
//	ds, _ := store.Init("prot", cols, orpheusdb.InitOptions{PrimaryKey: []string{"p1", "p2"}})
//	v1, _ := ds.Commit(rows, nil, "initial import")
//	rows2, _ := ds.Checkout(v1)
//	res, _ := store.Run("SELECT count(*) FROM VERSION 1 OF CVD prot")
//
// A Store is safe for concurrent use by multiple goroutines (e.g. the HTTP
// service in internal/server). Locking is layered so independent datasets
// never contend: a store-level lock guards the dataset registry and catalog,
// each Dataset carries its own RWMutex (commits on dataset A never block
// checkouts on dataset B), and a store-wide save lock is held shared by
// mutators and exclusively by Save, so snapshots observe a quiescent engine.
package orpheusdb

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"orpheusdb/internal/cache"
	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/sql"
	"orpheusdb/internal/vgraph"
	"orpheusdb/internal/wal"
)

// Re-exported identifiers so applications only import this package.
type (
	// VersionID identifies a version of a dataset.
	VersionID = vgraph.VersionID
	// RecordID identifies an immutable record.
	RecordID = vgraph.RecordID
	// Column describes one attribute.
	Column = engine.Column
	// Row is one tuple.
	Row = engine.Row
	// Value is one cell.
	Value = engine.Value
	// ModelKind selects a data model.
	ModelKind = core.ModelKind
	// VersionInfo is version-level metadata.
	VersionInfo = core.VersionInfo
	// Result is a query result.
	Result = sql.Result
	// OptimizeResult reports a partition-optimizer run.
	OptimizeResult = core.OptimizeResult
	// MaintenanceResult reports a periodic partition-maintenance check.
	MaintenanceResult = core.MaintenanceResult
	// SetOp is a record-membership operator for multi-version scans.
	SetOp = core.SetOp
	// StorageBreakdown splits dataset storage into membership vs data bytes.
	StorageBreakdown = core.StorageBreakdown
	// CacheStats is a snapshot of the checkout cache's counters.
	CacheStats = cache.Stats
	// DatasetCacheStats is one dataset's share of the checkout cache.
	DatasetCacheStats = cache.DatasetStats
)

// Membership set operators for Dataset.MultiVersionCheckout and the SQL
// `VERSION v1 INTERSECT v2 OF CVD name` syntax.
const (
	SetUnion     = core.SetOpUnion
	SetIntersect = core.SetOpIntersect
	SetExcept    = core.SetOpExcept
)

// The data models of Section 3, plus the partitioned hybrid of Section 4.
const (
	TablePerVersion  = core.TablePerVersionModel
	CombinedTable    = core.CombinedTableModel
	SplitByVlist     = core.SplitByVlistModel
	SplitByRlist     = core.SplitByRlistModel
	DeltaBased       = core.DeltaModel
	PartitionedRlist = core.PartitionedRlistModel
)

// Value constructors, re-exported.
var (
	Int    = engine.IntValue
	Float  = engine.FloatValue
	String = engine.StringValue
	Bool   = engine.BoolValue
	Array  = engine.ArrayValue
	Null   = engine.NullValue
)

// Column kinds, re-exported.
const (
	KindInt      = engine.KindInt
	KindFloat    = engine.KindFloat
	KindString   = engine.KindString
	KindBool     = engine.KindBool
	KindIntArray = engine.KindIntArray
)

// DefaultSaveDelay is the debounce interval for asynchronous saves scheduled
// with ScheduleSave.
const DefaultSaveDelay = 250 * time.Millisecond

// DefaultCacheBudget is the byte budget the checkout cache starts with.
// Adjust with SetCacheBudget (0 disables caching).
const DefaultCacheBudget = cache.DefaultBudget

// Store is an OrpheusDB instance: an embedded relational database hosting any
// number of CVDs, a staging area, and user accounts. All methods are safe for
// concurrent use.
type Store struct {
	db   *engine.DB
	path string

	// mu guards the dataset registry, the CVD catalog and user tables, and
	// the active user name. Held exclusively while the catalog mutates
	// (Init, Drop, CreateUser) so readers never observe a half-written
	// catalog row.
	mu       sync.RWMutex
	user     string
	datasets map[string]*Dataset

	// ioMu is the save lock. Dataset-scoped writers (commits, optimize)
	// hold it shared — their tables are guarded by the per-dataset lock,
	// so unrelated datasets proceed concurrently. Operations touching
	// tables a raw SQL query could name concurrently (catalog, staging,
	// users) hold it exclusively, as do SQL write statements and Save
	// itself, so snapshots and scans never observe in-flight writes.
	// Pure readers skip it entirely.
	ioMu sync.RWMutex

	// stagingMu serializes operations on the shared staging/provenance
	// tables, which every dataset and user writes into.
	stagingMu sync.Mutex

	// diskMu serializes snapshot serialization to the store file, so an
	// async save and a Flush never interleave writes to the same path.
	diskMu sync.Mutex

	// cache is the version-aware checkout cache consulted by every
	// checkout and versioned scan. Read paths populate it under dataset
	// read locks; every mutator invalidates the affected dataset inside
	// its critical section (next to the WAL append), so no reader can
	// observe a stale entry. Set once in newStore, then read-only.
	cache *cache.Cache

	// Debounced async persistence (ScheduleSave / Flush).
	saveMu    sync.Mutex
	saveDelay time.Duration
	saveTimer *time.Timer
	saveArmed bool
	saveErr   error

	// Write-ahead log (EnableWAL; nil when disabled). Set once before the
	// store is shared, then read-only. walErr records the first append
	// failure (guarded by saveMu); ckptLSN is the watermark covered by the
	// last successful checkpoint.
	wal     *wal.Log
	walCfg  WALConfig
	walErr  error
	ckptLSN atomic.Uint64

	// obs is the store's observability substrate: metrics registry, tracer,
	// and the histogram handles the layers observe into (see obs_store.go).
	// Set once in newStore, then read-only.
	obs *storeObs

	// optimizer is the background partition optimizer, nil until
	// StartPartitionOptimizer (see optimizer.go).
	optimizer atomic.Pointer[PartitionOptimizer]

	// history is the retained metrics sampler, nil until
	// StartMetricsHistory (see telemetry.go).
	history atomic.Pointer[obs.History]

	// readOnly gates every mutator: a follower replica applies the
	// primary's WAL stream and serves reads but rejects local writes
	// (see repl_store.go). Flipped false by promotion.
	readOnly atomic.Bool

	// repl is the attached replication driver (a follower's state machine),
	// nil on a primary. Guarded by replMu.
	replMu sync.Mutex
	repl   Replication
}

func newStore(db *engine.DB, path string) *Store {
	c := cache.New(DefaultCacheBudget, db.Stats())
	// Seed the generation epoch per process so ETag-style version tokens
	// minted before a restart can never validate against post-restart
	// content (the in-memory generation counters would otherwise restart
	// at zero and could collide).
	c.SeedEpoch(uint64(time.Now().UnixNano()))
	s := &Store{
		db:        db,
		path:      path,
		user:      "default",
		datasets:  make(map[string]*Dataset),
		saveDelay: DefaultSaveDelay,
		cache:     c,
		obs:       newStoreObs(),
	}
	s.registerCollectors()
	return s
}

// NewStore creates an in-memory store.
func NewStore() *Store {
	return newStore(engine.NewDB(), "")
}

// BackendKind selects the storage engine behind a persisted store.
type BackendKind string

const (
	// BackendAuto sniffs the existing file format (new stores default to
	// the in-memory engine with gob snapshots).
	BackendAuto BackendKind = ""
	// BackendMemory keeps every record in memory; checkpoints write whole
	// gob snapshots. The original engine.
	BackendMemory BackendKind = "memory"
	// BackendDisk keeps records in a single-file page KV; only a
	// byte-budgeted working set stays resident and checkpoints flush dirty
	// pages. Datasets can exceed RAM.
	BackendDisk BackendKind = "disk"
)

// StoreOptions tunes OpenStoreWithOptions.
type StoreOptions struct {
	// Backend picks the storage engine. BackendAuto matches whatever is on
	// disk already.
	Backend BackendKind
	// PageBudgetBytes caps the disk backend's resident working set
	// (0 = DefaultPageBudget). Ignored by the memory backend.
	PageBudgetBytes int64
}

// DefaultPageBudget is the disk backend's resident working-set cap when none
// is configured.
const DefaultPageBudget int64 = 256 << 20

// OpenStore opens (or creates) a store persisted at path, sniffing the
// existing file's format to pick the storage engine (gob snapshot → memory,
// page KV → disk). New stores get the memory engine; use
// OpenStoreWithOptions to create a disk-backed store.
func OpenStore(path string) (*Store, error) {
	return OpenStoreWithOptions(path, StoreOptions{})
}

// OpenStoreWithOptions opens (or creates) a store persisted at path with an
// explicit storage engine choice.
func OpenStoreWithOptions(path string, opts StoreOptions) (*Store, error) {
	if opts.PageBudgetBytes <= 0 {
		opts.PageBudgetBytes = DefaultPageBudget
	}
	isDisk, err := engine.IsDiskFile(path)
	if err != nil {
		return nil, err
	}
	exists := false
	if _, serr := os.Stat(path); serr == nil {
		exists = true
	} else if !os.IsNotExist(serr) {
		return nil, serr
	}
	kind := opts.Backend
	if kind == BackendAuto {
		if isDisk {
			kind = BackendDisk
		} else {
			kind = BackendMemory
		}
	}
	switch kind {
	case BackendDisk:
		if exists && !isDisk {
			return nil, fmt.Errorf("orpheus: %s holds a gob snapshot, not a disk-backend store; open with -backend=memory (or move it aside)", path)
		}
		db, err := engine.OpenDisk(path, engine.DiskOptions{PageBudgetBytes: opts.PageBudgetBytes})
		if err != nil {
			return nil, err
		}
		return newStore(db, path), nil
	case BackendMemory:
		if isDisk {
			return nil, fmt.Errorf("orpheus: %s holds a disk-backend store; open with -backend=disk", path)
		}
		if !exists {
			return newStore(engine.NewDB(), path), nil
		}
		db, err := engine.Load(path)
		if err != nil {
			return nil, err
		}
		return newStore(db, path), nil
	default:
		return nil, fmt.Errorf("orpheus: unknown backend %q (want memory or disk)", kind)
	}
}

// BackendKind names the store's storage engine ("memory" or "disk").
func (s *Store) BackendKind() BackendKind { return BackendKind(s.db.BackendKind()) }

// SetPageBudget adjusts the disk backend's resident working-set cap at
// runtime (no-op for memory stores). See engine.DB.SetPageBudget.
func (s *Store) SetPageBudget(n int64) { s.db.SetPageBudget(n) }

// Save persists the store to its path synchronously (no-op for in-memory
// stores). The save lock is held exclusively only while the in-memory
// snapshot is captured; the expensive gob encode and disk write run after
// it is released, so in-flight requests stall only for the copy.
//
// With a WAL attached, Save is a checkpoint: the snapshot carries the
// applied-LSN watermark, and on success the log segments it made obsolete
// are truncated. The snapshot's estimated size is accounted in
// engine.Stats (Checkpoints / CheckpointBytes) so checkpoint cost stays
// observable.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	if s.db.Backend() != nil {
		return s.saveBackend()
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	s.ioMu.Lock()
	snap := s.db.Snapshot()
	s.ioMu.Unlock()
	err := snap.WriteFile(s.path)
	if err == nil {
		stats := s.db.Stats()
		stats.Checkpoints.Add(1)
		// The file just written gives the exact cost for free; the
		// Snapshot.ByteSize estimator exists for callers who need the
		// figure before encoding.
		if fi, serr := os.Stat(s.path); serr == nil {
			stats.CheckpointBytes.Add(fi.Size())
		} else {
			stats.CheckpointBytes.Add(snap.ByteSize())
		}
		s.ckptLSN.Store(snap.WalLSN)
		if s.wal != nil {
			if terr := s.wal.Truncate(snap.WalLSN); terr != nil {
				err = terr
			}
		}
	}
	s.saveMu.Lock()
	s.saveErr = err
	s.saveMu.Unlock()
	// Retained metrics history rides the checkpoint path (best-effort
	// sidecar; see telemetry.go).
	s.saveHistory()
	return err
}

// saveBackend is the disk-backend checkpoint: flush dirty pages and the
// catalog as one atomic KV commit instead of re-serializing the whole store.
// The save lock is held exclusively for the duration — unlike the snapshot
// path there is no in-memory copy to hand off, but the write is O(dirty
// pages), not O(store). Pure readers proceed throughout (they never take
// ioMu); on success the WAL is truncated up to the flushed watermark exactly
// as after a snapshot checkpoint.
func (s *Store) saveBackend() error {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	s.ioMu.Lock()
	written, err := s.db.FlushBackend()
	lsn := s.db.WalLSN()
	s.ioMu.Unlock()
	if err == nil {
		stats := s.db.Stats()
		stats.Checkpoints.Add(1)
		stats.CheckpointBytes.Add(written)
		s.ckptLSN.Store(lsn)
		if s.wal != nil {
			if terr := s.wal.Truncate(lsn); terr != nil {
				err = terr
			}
		}
	}
	s.saveMu.Lock()
	s.saveErr = err
	s.saveMu.Unlock()
	s.saveHistory()
	return err
}

// SetSaveDelay changes the debounce interval used by ScheduleSave.
func (s *Store) SetSaveDelay(d time.Duration) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if d <= 0 {
		d = DefaultSaveDelay
	}
	s.saveDelay = d
}

// ScheduleSave requests an asynchronous save: the store persists itself at
// most saveDelay later, coalescing bursts of mutations into one snapshot so
// persistence stays off the request hot path. Mutating Dataset and Store
// methods call this automatically. No-op for in-memory stores.
func (s *Store) ScheduleSave() {
	if s.path == "" {
		return
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if s.saveArmed {
		return
	}
	s.saveArmed = true
	s.saveTimer = time.AfterFunc(s.saveDelay, s.asyncSave)
}

func (s *Store) asyncSave() {
	s.saveMu.Lock()
	s.saveArmed = false
	s.saveMu.Unlock()
	_ = s.Save() // outcome recorded in saveErr by Save itself
}

// SaveErr reports the outcome of the most recent save (sync or async).
func (s *Store) SaveErr() error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.saveErr
}

// Flush cancels any pending debounced save and persists synchronously, also
// fsyncing the WAL tail (which matters under FsyncInterval/FsyncOff). Call
// it before process exit (Close is an alias).
func (s *Store) Flush() error {
	s.saveMu.Lock()
	if s.saveTimer != nil {
		s.saveTimer.Stop()
	}
	s.saveArmed = false
	s.saveMu.Unlock()
	err := s.Save()
	if serr := s.SyncWAL(); err == nil {
		err = serr
	}
	return err
}

// Close flushes pending state to disk and, for disk-backend stores, releases
// the store file (and its lock). A memory-backend store remains usable after
// Close; a disk-backend store does not.
func (s *Store) Close() error {
	err := s.Flush()
	if s.db.Backend() != nil {
		if cerr := s.db.CloseBackend(); err == nil {
			err = cerr
		}
	}
	return err
}

// DB exposes the underlying engine database (for advanced use and tests).
// Access through DB bypasses the store's locking; do not mix it with
// concurrent Store use.
func (s *Store) DB() *engine.DB { return s.db }

// SetUser switches the active user (config command).
func (s *Store) SetUser(name string) error {
	if name == "" {
		return fmt.Errorf("orpheusdb: empty user name")
	}
	s.mu.Lock()
	s.user = name
	s.mu.Unlock()
	return nil
}

// WhoAmI returns the active user name.
func (s *Store) WhoAmI() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.user
}

// CreateUser registers a new user and switches to it.
func (s *Store) CreateUser(name string) error {
	if err := s.AddUser(name); err != nil {
		return err
	}
	return s.SetUser(name)
}

// AddUser registers a new user without switching to it (the multi-client
// variant of CreateUser, used by the HTTP service).
func (s *Store) AddUser(name string) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := core.CreateUser(s.db, name); err != nil {
		return err
	}
	if err := s.logMutation(&wal.Record{Type: wal.TypeUserAdd, User: name}); err != nil {
		return err
	}
	s.ScheduleSave()
	return nil
}

// Users lists registered users.
func (s *Store) Users() []string {
	s.ioMu.RLock() // the users table is SQL-nameable; exclude DML writes
	defer s.ioMu.RUnlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return core.Users(s.db)
}

// InitOptions configures dataset creation.
type InitOptions struct {
	// Model selects the data model; defaults to split-by-rlist.
	Model ModelKind
	// PrimaryKey names the relation's key attributes.
	PrimaryKey []string
}

// Dataset is a handle to one CVD. Handles are cached: all callers asking for
// the same CVD share one Dataset and therefore one lock, so concurrent
// commits and checkouts coordinate correctly. All methods are safe for
// concurrent use.
type Dataset struct {
	store *Store
	cvd   *core.CVD

	// mu is the per-dataset lock: Commit/Optimize/Drop hold it
	// exclusively, Checkout/Diff/Info and friends hold it shared.
	mu sync.RWMutex
	// dropped marks a handle whose CVD was removed by Drop; subsequent
	// operations fail instead of writing stale state into a possibly
	// re-created dataset of the same name. Guarded by mu.
	dropped bool
}

// aliveLocked reports an error for a handle invalidated by Drop. Caller
// holds d.mu (shared or exclusive).
func (d *Dataset) aliveLocked() error {
	if d.dropped {
		return fmt.Errorf("orpheusdb: dataset %q was dropped; reopen it with Store.Dataset", d.cvd.Name())
	}
	return nil
}

// Init creates a new CVD.
func (s *Store) Init(name string, cols []Column, opts InitOptions) (*Dataset, error) {
	if err := s.writable(); err != nil {
		return nil, err
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := core.Init(s.db, name, cols, core.InitOptions{
		Model:      opts.Model,
		PrimaryKey: opts.PrimaryKey,
	})
	if err != nil {
		return nil, err
	}
	c.SetCache(s.cache)
	c.SetMetrics(s.obs.core)
	c.SetHeat(core.NewHeat())
	// A dropped dataset of the same name may have left clients holding
	// version tokens; advancing the generation keeps them from validating
	// against the new incarnation.
	s.cache.InvalidateDataset(name)
	d := &Dataset{store: s, cvd: c}
	s.datasets[name] = d
	if err := s.logMutation(&wal.Record{
		Type:       wal.TypeInit,
		Dataset:    name,
		Model:      string(c.Model().Kind()),
		Cols:       cols,
		PrimaryKey: opts.PrimaryKey,
	}); err != nil {
		return nil, err
	}
	s.ScheduleSave()
	return d, nil
}

// Dataset opens an existing CVD by name. The returned handle is shared by
// every caller asking for the same name.
func (s *Store) Dataset(name string) (*Dataset, error) {
	s.ioMu.RLock() // the catalog is SQL-nameable; exclude DML writes
	defer s.ioMu.RUnlock()
	return s.dataset(name)
}

// dataset is Dataset for callers already holding ioMu (Run's materializer).
func (s *Store) dataset(name string) (*Dataset, error) {
	s.mu.RLock()
	if d, ok := s.datasets[name]; ok {
		s.mu.RUnlock()
		return d, nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.datasets[name]; ok {
		return d, nil
	}
	c, err := core.Open(s.db, name)
	if err != nil {
		return nil, err
	}
	c.SetCache(s.cache)
	c.SetMetrics(s.obs.core)
	c.SetHeat(core.NewHeat())
	d := &Dataset{store: s, cvd: c}
	s.datasets[name] = d
	return d, nil
}

// List names the CVDs in the store (ls command).
func (s *Store) List() []string {
	s.ioMu.RLock() // the catalog is SQL-nameable; exclude DML writes
	defer s.ioMu.RUnlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return core.ListCVDs(s.db)
}

// Drop removes a CVD and all its versions (drop command). Outstanding
// Dataset handles are invalidated: their operations fail until reopened.
func (s *Store) Drop(name string) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		c, err := core.Open(s.db, name)
		if err != nil {
			return err
		}
		d = &Dataset{store: s, cvd: c}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.cvd.Drop(); err != nil {
		return err
	}
	d.dropped = true
	delete(s.datasets, name)
	s.cache.InvalidateDataset(name)
	if err := s.logMutation(&wal.Record{Type: wal.TypeDrop, Dataset: name}); err != nil {
		return err
	}
	s.ScheduleSave()
	return nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.cvd.Name() }

// Columns returns a copy of the dataset's current data attributes (a copy
// because schema-evolving commits mutate the live slice in place).
func (d *Dataset) Columns() []Column {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Column(nil), d.cvd.Columns()...)
}

// PrimaryKey returns the relation's key attribute names.
func (d *Dataset) PrimaryKey() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.PrimaryKey()
}

// Model returns the data model kind in use.
func (d *Dataset) Model() ModelKind {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.Model().Kind()
}

// Versions lists version ids in commit order.
func (d *Dataset) Versions() []VersionID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]VersionID(nil), d.cvd.Versions()...)
}

// LatestVersion returns the most recent version id (0 if none).
func (d *Dataset) LatestVersion() VersionID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.LatestVersion()
}

// Info returns a version's metadata.
func (d *Dataset) Info(v VersionID) (*VersionInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.Info(v)
}

// Commit adds a new version derived from parents and returns its id.
func (d *Dataset) Commit(rows []Row, parents []VersionID, msg string) (VersionID, error) {
	return d.CommitCtx(context.Background(), rows, parents, msg)
}

// CommitCtx is Commit with trace propagation: when ctx carries a trace (the
// HTTP middleware starts one per request), the core commit phases and the
// WAL append contribute nested spans.
func (d *Dataset) CommitCtx(ctx context.Context, rows []Row, parents []VersionID, msg string) (VersionID, error) {
	if err := d.store.writable(); err != nil {
		return 0, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return 0, err
	}
	v, err := d.cvd.CommitCtx(ctx, rows, parents, msg)
	if err != nil {
		return 0, err
	}
	// Invalidate before the WAL append: even if the append fails, the
	// version exists in memory and readers must not see pre-commit entries.
	d.store.cache.InvalidateDataset(d.cvd.Name())
	if err := d.store.logMutationCtx(ctx, d.commitRecord(wal.TypeCommit, nil, rows, parents, msg, v)); err != nil {
		return v, err
	}
	d.store.ScheduleSave()
	d.store.wakeOptimizer()
	return v, nil
}

// CommitWithSchema commits rows under a (possibly changed) schema,
// exercising the single-pool schema evolution of Section 3.3.
func (d *Dataset) CommitWithSchema(cols []Column, rows []Row, parents []VersionID, msg string) (VersionID, error) {
	return d.CommitWithSchemaCtx(context.Background(), cols, rows, parents, msg)
}

// CommitWithSchemaCtx is CommitWithSchema with trace propagation (see
// CommitCtx).
func (d *Dataset) CommitWithSchemaCtx(ctx context.Context, cols []Column, rows []Row, parents []VersionID, msg string) (VersionID, error) {
	if err := d.store.writable(); err != nil {
		return 0, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return 0, err
	}
	v, err := d.cvd.CommitWithSchemaCtx(ctx, cols, rows, parents, msg)
	if err != nil {
		return 0, err
	}
	d.store.cache.InvalidateDataset(d.cvd.Name()) // before WAL append; see Commit
	if err := d.store.logMutationCtx(ctx, d.commitRecord(wal.TypeCommitSchema, cols, rows, parents, msg, v)); err != nil {
		return v, err
	}
	d.store.ScheduleSave()
	d.store.wakeOptimizer()
	return v, nil
}

// Checkout materializes one or more versions as rows; with several versions
// records merge in precedence order under the primary key.
func (d *Dataset) Checkout(vids ...VersionID) ([]Row, error) {
	return d.CheckoutCtx(context.Background(), vids...)
}

// CheckoutCtx is Checkout with trace propagation: when ctx carries a trace,
// the cache lookup, bitmap resolution, and record fetch contribute nested
// spans, and the latency lands in the hit/miss checkout histograms.
func (d *Dataset) CheckoutCtx(ctx context.Context, vids ...VersionID) ([]Row, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.CheckoutCtx(ctx, vids...)
}

// CheckoutWithColumns returns the schema and the materialized rows under a
// single lock acquisition, so the pair stays mutually consistent even while
// schema-changing commits run concurrently.
func (d *Dataset) CheckoutWithColumns(vids ...VersionID) ([]Column, []Row, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, nil, err
	}
	rows, err := d.cvd.Checkout(vids...)
	if err != nil {
		return nil, nil, err
	}
	return append([]Column(nil), d.cvd.Columns()...), rows, nil
}

// CheckoutWithToken is CheckoutWithColumns plus the dataset's cache
// generation, observed under the same lock acquisition as the rows. The
// generation advances on every mutation that could change what this
// dataset's versions materialize to, so (dataset, versions, generation) is a
// sound validator: a client holding rows tagged with the same generation is
// guaranteed they are still current (the HTTP layer turns this into
// ETag-style X-Orpheus-Version headers and 304 responses).
func (d *Dataset) CheckoutWithToken(vids ...VersionID) ([]Column, []Row, uint64, error) {
	return d.CheckoutWithTokenCtx(context.Background(), vids...)
}

// CheckoutWithTokenCtx is CheckoutWithToken with trace propagation (see
// CheckoutCtx).
func (d *Dataset) CheckoutWithTokenCtx(ctx context.Context, vids ...VersionID) ([]Column, []Row, uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, nil, 0, err
	}
	rows, err := d.cvd.CheckoutCtx(ctx, vids...)
	if err != nil {
		return nil, nil, 0, err
	}
	gen := d.store.cache.Generation(d.cvd.Name())
	return append([]Column(nil), d.cvd.Columns()...), rows, gen, nil
}

// CacheGeneration returns the dataset's current cache generation (see
// CheckoutWithToken) under the dataset read lock.
func (d *Dataset) CacheGeneration() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.cache.Generation(d.cvd.Name())
}

// CacheStats snapshots the store's checkout-cache counters.
func (s *Store) CacheStats() CacheStats { return s.cache.Stats() }

// DatasetCacheStats reports one dataset's share of the checkout cache.
func (s *Store) DatasetCacheStats(name string) DatasetCacheStats {
	return s.cache.DatasetStats(name)
}

// FlushCache drops every cached materialization (entries rebuild on demand;
// correctness never depends on flushing).
func (s *Store) FlushCache() { s.cache.Flush() }

// SetCacheBudget resizes the checkout cache's byte budget, evicting down to
// it immediately. A budget <= 0 disables caching.
func (s *Store) SetCacheBudget(budget int64) { s.cache.SetBudget(budget) }

// DiffWithColumns is Diff plus the schema under a single lock acquisition.
func (d *Dataset) DiffWithColumns(a, b VersionID) (cols []Column, onlyA, onlyB []Row, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, nil, nil, err
	}
	onlyA, onlyB, err = d.cvd.Diff(a, b)
	if err != nil {
		return nil, nil, nil, err
	}
	return append([]Column(nil), d.cvd.Columns()...), onlyA, onlyB, nil
}

// CheckoutToTable materializes versions into a staging table owned by the
// store's active user.
func (d *Dataset) CheckoutToTable(table string, vids ...VersionID) error {
	s := d.store
	if err := s.writable(); err != nil {
		return err
	}
	user := s.WhoAmI() // before d.mu: lock order is s.mu before dataset locks
	// Exclusive save lock: the staged table and provenance rows must not
	// be observed half-written by concurrent SQL or saves.
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	s.stagingMu.Lock()
	defer s.stagingMu.Unlock()
	if err := d.cvd.CheckoutToTable(table, user, vids...); err != nil {
		return err
	}
	s.ScheduleSave()
	return nil
}

// CommitTable commits a staged table back as a new version and removes it
// from the staging area.
func (d *Dataset) CommitTable(table, msg string) (VersionID, error) {
	s := d.store
	if err := s.writable(); err != nil {
		return 0, err
	}
	user := s.WhoAmI() // before d.mu: lock order is s.mu before dataset locks
	// Exclusive save lock: committing drops the staged table out from
	// under any SQL statement that could name it.
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return 0, err
	}
	s.stagingMu.Lock()
	defer s.stagingMu.Unlock()
	// Capture the staged rows before the commit consumes the table: the WAL
	// record carries the materialized data, so recovery does not depend on
	// the (checkpoint-durable-only) staging area.
	var staged *wal.Record
	if s.wal != nil {
		t, terr := s.db.MustTable(table)
		if terr == nil {
			var rows []Row
			t.Scan(func(_ engine.RowID, r Row) bool {
				rows = append(rows, r)
				return true
			})
			staged = &wal.Record{
				Type:    wal.TypeCommitTable,
				Dataset: d.cvd.Name(),
				Table:   table,
				User:    user,
				Msg:     msg,
				Cols:    append([]Column(nil), t.Columns()...),
				Rows:    rows,
			}
		}
	}
	v, err := d.cvd.CommitTable(table, user, msg)
	if err != nil {
		return 0, err
	}
	s.cache.InvalidateDataset(d.cvd.Name()) // before WAL append; see Commit
	if staged != nil {
		if info, ierr := d.cvd.Info(v); ierr == nil {
			staged.TimeNanos = info.CommitTime.UnixNano()
			staged.Parents = make([]int64, len(info.Parents))
			for i, pv := range info.Parents {
				staged.Parents[i] = int64(pv)
			}
		}
		staged.Version = int64(v)
		if set, serr := d.cvd.RlistSet(v); serr == nil {
			staged.Members = set
		}
		if err := s.logMutation(staged); err != nil {
			return v, err
		}
	}
	s.ScheduleSave()
	s.wakeOptimizer()
	return v, nil
}

// Diff returns the rows only in a and only in b. Membership is resolved as
// bitmap differences over the versions' rlists, so only |result| records are
// fetched from the backing tables.
func (d *Dataset) Diff(a, b VersionID) (onlyA, onlyB []Row, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, nil, err
	}
	return d.cvd.Diff(a, b)
}

// MultiVersionCheckout materializes a left-associative chain of record-set
// operations over versions: vids[0] ops[0] vids[1] ... — the programmatic
// face of the SQL `VERSION v1 INTERSECT v2 OF CVD name` scan. With a single
// version and no ops it degenerates to a plain checkout of that version's
// records. Unlike Checkout, results are record-id algebra: no primary-key
// precedence is applied.
func (d *Dataset) MultiVersionCheckout(vids []VersionID, ops []SetOp) ([]Row, error) {
	return d.MultiVersionCheckoutCtx(context.Background(), vids, ops)
}

// MultiVersionCheckoutCtx is MultiVersionCheckout with trace propagation
// (see CheckoutCtx).
func (d *Dataset) MultiVersionCheckoutCtx(ctx context.Context, vids []VersionID, ops []SetOp) ([]Row, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.MultiVersionCheckoutCtx(ctx, vids, ops)
}

// StorageBreakdown reports where the dataset's bytes live: compressed
// membership (rlists/vlists) versus record data.
func (d *Dataset) StorageBreakdown() StorageBreakdown {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.StorageBreakdown()
}

// Ancestors returns all transitive ancestors of v.
func (d *Dataset) Ancestors(v VersionID) ([]VersionID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.Ancestors(v)
}

// Descendants returns all transitive descendants of v.
func (d *Dataset) Descendants(v VersionID) ([]VersionID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.Descendants(v)
}

// StorageBytes reports the dataset's model-owned storage.
func (d *Dataset) StorageBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.StorageBytes()
}

// Optimize runs the partition optimizer (LYRESPLIT) under the storage budget
// γ = gammaFactor × |R| and migrates the partitioned layout. The dataset
// must use the PartitionedRlist model.
func (d *Dataset) Optimize(gammaFactor float64) (*core.OptimizeResult, error) {
	return d.optimize(gammaFactor, false)
}

// OptimizeNaive is Optimize with rebuild-from-scratch migration (the
// baseline of Figures 14b/15b).
func (d *Dataset) OptimizeNaive(gammaFactor float64) (*core.OptimizeResult, error) {
	return d.optimize(gammaFactor, true)
}

func (d *Dataset) optimize(gammaFactor float64, naive bool) (*core.OptimizeResult, error) {
	if err := d.store.writable(); err != nil {
		return nil, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	res, err := d.cvd.Optimize(gammaFactor, naive)
	if err != nil {
		return nil, err
	}
	// Migration rewrites the partitioned layout; cached materializations
	// remain value-correct but would pin the pre-migration fetch results,
	// so drop them (and advance the generation) for observability's sake.
	d.store.cache.InvalidateDataset(d.cvd.Name())
	if err := d.store.logMutation(&wal.Record{
		Type:    wal.TypeOptimize,
		Dataset: d.cvd.Name(),
		Gamma:   gammaFactor,
		Naive:   naive,
	}); err != nil {
		return res, err
	}
	d.store.ScheduleSave()
	return res, nil
}

// CVD exposes the underlying core object for advanced use. Access through
// CVD bypasses the dataset lock; do not mix it with concurrent use.
func (d *Dataset) CVD() *core.CVD { return d.cvd }

// SearchVersions returns the versions whose metadata satisfies pred, a
// version-graph shortcut query (Section 2.2).
func (d *Dataset) SearchVersions(pred func(*VersionInfo) bool) ([]VersionID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	var out []VersionID
	for _, v := range d.cvd.Versions() {
		info, err := d.cvd.Info(v)
		if err != nil {
			return nil, err
		}
		if pred(info) {
			out = append(out, v)
		}
	}
	return out, nil
}

// LastModified returns the most recent commit time across versions.
func (d *Dataset) LastModified() (time.Time, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return time.Time{}, err
	}
	var best time.Time
	for _, v := range d.cvd.Versions() {
		info, err := d.cvd.Info(v)
		if err != nil {
			return time.Time{}, err
		}
		if info.CommitTime.After(best) {
			best = info.CommitTime
		}
	}
	return best, nil
}

// OptimizeWeighted is Optimize under the weighted checkout cost of Appendix
// C.2: versions with higher freq land in smaller partitions. Missing
// versions default to weight 1.
func (d *Dataset) OptimizeWeighted(gammaFactor float64, freq map[VersionID]int64) (*core.OptimizeResult, error) {
	if err := d.store.writable(); err != nil {
		return nil, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	res, err := d.cvd.OptimizeWeighted(gammaFactor, freq, false)
	if err != nil {
		return nil, err
	}
	d.store.cache.InvalidateDataset(d.cvd.Name()) // layout change; see optimize
	rec := &wal.Record{
		Type:     wal.TypeOptimize,
		Dataset:  d.cvd.Name(),
		Gamma:    gammaFactor,
		Weighted: true,
		Freq:     make(map[int64]int64, len(freq)),
	}
	for k, v := range freq {
		rec.Freq[int64(k)] = v
	}
	if err := d.store.logMutation(rec); err != nil {
		return res, err
	}
	d.store.ScheduleSave()
	return res, nil
}

// RecencyWeights builds a checkout-frequency map weighting the most recent
// recentFraction of versions hot× more than the rest.
func (d *Dataset) RecencyWeights(recentFraction float64, hot int64) map[VersionID]int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.RecencyWeights(recentFraction, hot)
}

// MaintainPartitions runs the periodic partition check of Section 4.3:
// when the current checkout cost exceeds mu times the best LYRESPLIT can
// achieve under gammaFactor·|R|, the layout is migrated.
func (d *Dataset) MaintainPartitions(gammaFactor, mu float64) (*core.MaintenanceResult, error) {
	if err := d.store.writable(); err != nil {
		return nil, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	res, err := d.cvd.MaintainPartitions(gammaFactor, mu, false)
	if err != nil {
		return nil, err
	}
	if res != nil && res.Migrated {
		d.store.cache.InvalidateDataset(d.cvd.Name()) // layout change; see optimize
		if err := d.store.logMutation(&wal.Record{
			Type:    wal.TypeMaintain,
			Dataset: d.cvd.Name(),
			Gamma:   gammaFactor,
			Mu:      mu,
		}); err != nil {
			return res, err
		}
		d.store.ScheduleSave()
	}
	return res, nil
}
