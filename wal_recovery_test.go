package orpheusdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Crash-recovery suite for the write-ahead log: every test mutates a store,
// simulates a SIGKILL (no flush, no checkpoint beyond what the test ran
// explicitly), reopens from the surviving files, and asserts the recovered
// state matches exactly what had been acknowledged.

// walTestBackend selects the storage engine every openWALStore call uses.
// The default (memory) runs the suite as it always ran; the disk-backend
// umbrella test flips it to re-run the same matrices against the page store.
// Tests in this package run sequentially, so a plain variable is safe.
var walTestBackend = BackendMemory

// openWALStore opens (or reopens) a WAL-backed store rooted at dir, on the
// backend walTestBackend selects. The debounced save is pushed out to an
// hour so checkpoints only happen when a test asks for one.
func openWALStore(t *testing.T, dir string, policy FsyncPolicy) *Store {
	t.Helper()
	return openWALStoreCfg(t, dir, WALConfig{Policy: policy})
}

// openWALStoreCfg is openWALStore with the full WAL configuration exposed
// (segment size, fsync cadence) for tests that need rotation behavior.
func openWALStoreCfg(t *testing.T, dir string, cfg WALConfig) *Store {
	t.Helper()
	s, err := OpenStoreWithOptions(filepath.Join(dir, "store.odb"), StoreOptions{Backend: walTestBackend})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	s.SetSaveDelay(time.Hour)
	if err := s.EnableWAL(cfg); err != nil {
		t.Fatalf("EnableWAL: %v", err)
	}
	return s
}

// crash abandons the store without flushing: the pending debounced save is
// cancelled and the log's file handle released. Anything not already handed
// to the OS is lost, exactly as with a SIGKILL. For a disk-backend store the
// page file's handle (and its flock) is released too — diskv discards writes
// staged since the last commit frame, which is exactly what a kill leaves
// behind — so the next open in this process can take the lock.
func crash(s *Store) {
	s.saveMu.Lock()
	if s.saveTimer != nil {
		s.saveTimer.Stop()
	}
	s.saveArmed = false
	s.saveMu.Unlock()
	if s.wal != nil {
		s.wal.Close()
	}
	if s.db.Backend() != nil {
		s.db.CloseBackend()
	}
}

func protCols() []Column {
	return []Column{
		{Name: "id", Type: KindInt},
		{Name: "name", Type: KindString},
	}
}

func mustCommit(t *testing.T, d *Dataset, parents []VersionID, msg string, ids ...int64) VersionID {
	t.Helper()
	rows := make([]Row, len(ids))
	for i, id := range ids {
		rows[i] = Row{Int(id), String(fmt.Sprintf("r%d", id))}
	}
	v, err := d.Commit(rows, parents, msg)
	if err != nil {
		t.Fatalf("commit %q: %v", msg, err)
	}
	return v
}

func assertVersions(t *testing.T, d *Dataset, want ...VersionID) {
	t.Helper()
	got := d.Versions()
	if len(got) != len(want) {
		t.Fatalf("versions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("versions = %v, want %v", got, want)
		}
	}
}

// TestWALRecoveryNoCheckpoint crashes before any snapshot exists: the entire
// store state must come back from the log alone.
func TestWALRecoveryNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncAlways)
	if err := s.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1, 2, 3)
	v2 := mustCommit(t, d, []VersionID{v1}, "v2", 2, 3, 4)
	v3, err := d.CommitWithSchema(
		[]Column{{Name: "id", Type: KindInt}, {Name: "name", Type: KindString}, {Name: "score", Type: KindFloat}},
		[]Row{{Int(5), String("r5"), Float(0.5)}},
		[]VersionID{v2}, "v3 schema evolution")
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := s.Init("scratch", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, scratch, nil, "doomed", 9)
	if err := s.Drop("scratch"); err != nil {
		t.Fatal(err)
	}
	wantRows, err := d.Checkout(v3)
	if err != nil {
		t.Fatal(err)
	}
	wantInfo, err := d.Info(v2)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)
	if walTestBackend != BackendDisk {
		// (A disk-backend store creates its page file at open; only the gob
		// snapshot is written lazily at the first checkpoint.)
		if _, err := os.Stat(filepath.Join(dir, "store.odb")); !os.IsNotExist(err) {
			t.Fatalf("premise broken: snapshot file exists before any checkpoint")
		}
	}

	r := openWALStore(t, dir, FsyncAlways)
	defer crash(r)
	if got := r.List(); len(got) != 1 || got[0] != "prot" {
		t.Fatalf("recovered datasets = %v, want [prot]", got)
	}
	found := false
	for _, u := range r.Users() {
		if u == "alice" {
			found = true
		}
	}
	if !found {
		t.Fatalf("user alice not recovered (users: %v)", r.Users())
	}
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	assertVersions(t, rd, v1, v2, v3)
	gotRows, err := rd.Checkout(v3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("checkout(v3) after recovery: %d rows, want %d", len(gotRows), len(wantRows))
	}
	gotInfo, err := rd.Info(v2)
	if err != nil {
		t.Fatal(err)
	}
	if gotInfo.Message != wantInfo.Message || !gotInfo.CommitTime.Equal(wantInfo.CommitTime) {
		t.Fatalf("recovered v2 info %+v, want %+v", gotInfo, wantInfo)
	}
	if gotInfo.NumRecords != wantInfo.NumRecords {
		t.Fatalf("recovered v2 has %d records, want %d", gotInfo.NumRecords, wantInfo.NumRecords)
	}
	// The recovered store is live: committing works (the schema now has the
	// evolved third column) and extends the graph.
	v4, err := rd.Commit([]Row{{Int(6), String("r6"), Float(1.5)}}, []VersionID{v3}, "post-recovery")
	if err != nil {
		t.Fatal(err)
	}
	if v4 != v3+1 {
		t.Fatalf("post-recovery commit got version %d, want %d", v4, v3+1)
	}
}

// TestWALRecoveryAfterCheckpoint mixes snapshot and log: a checkpoint covers
// a prefix, the log holds the tail, and recovery stitches them together.
func TestWALRecoveryAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncInterval)
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1, 2)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.WALStatus()
	if !st.Enabled || st.CheckpointLSN == 0 || st.CheckpointLSN != st.AppliedLSN {
		t.Fatalf("after checkpoint, status = %+v", st)
	}
	if st.Checkpoints < 1 || st.CheckpointBytes <= 0 {
		t.Fatalf("checkpoint accounting missing: %+v", st)
	}
	v2 := mustCommit(t, d, []VersionID{v1}, "after checkpoint", 2, 3)
	if err := s.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openWALStore(t, dir, FsyncInterval)
	defer crash(r)
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	assertVersions(t, rd, v1, v2)
	rows, err := rd.Checkout(v2)
	if err != nil || len(rows) != 2 {
		t.Fatalf("checkout(v2) = %d rows, %v; want 2", len(rows), err)
	}
	found := false
	for _, u := range r.Users() {
		found = found || u == "bob"
	}
	if !found {
		t.Fatal("user bob (logged after the checkpoint) not recovered")
	}
}

// TestWALCheckpointTruncatesLog verifies the checkpoint/truncation
// lifecycle: once a snapshot covers the log, obsolete segments are removed
// and recovery replays only the tail.
func TestWALCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so commits rotate often.
	s := openWALStoreCfg(t, dir, WALConfig{Policy: FsyncOff, SegmentBytes: 512})
	d, err := s.Init("prot", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := VersionID(0)
	for i := 0; i < 20; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		last = mustCommit(t, d, parents, fmt.Sprintf("c%d", i), int64(i), int64(i+1))
	}
	before := s.WALStatus()
	if before.Segments < 3 {
		t.Fatalf("premise: want several segments, got %d", before.Segments)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := s.WALStatus()
	if after.Segments >= before.Segments || after.SizeBytes >= before.SizeBytes {
		t.Fatalf("checkpoint did not truncate: %d segs/%dB -> %d segs/%dB",
			before.Segments, before.SizeBytes, after.Segments, after.SizeBytes)
	}
	mustCommit(t, d, []VersionID{last}, "tail", 99)
	crash(s)

	r := openWALStore(t, dir, FsyncOff)
	defer crash(r)
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rd.Versions()); got != 21 {
		t.Fatalf("recovered %d versions, want 21", got)
	}
}

// TestWALCommitTableRecovery covers the staged-table commit path: the WAL
// record carries the materialized rows, so recovery does not need the (lost)
// staging table.
func TestWALCommitTableRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncAlways)
	if err := s.CreateUser("carol"); err != nil {
		t.Fatal(err)
	}
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1, 2)
	if err := d.CheckoutToTable("work", v1); err != nil {
		t.Fatal(err)
	}
	// Edit the staged table through SQL, then commit it back.
	if _, err := s.Run("INSERT INTO work VALUES (7, 'seven')"); err != nil {
		t.Fatal(err)
	}
	v2, err := d.CommitTable("work", "staged edit")
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Checkout(v2)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openWALStore(t, dir, FsyncAlways)
	defer crash(r)
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	assertVersions(t, rd, v1, v2)
	got, err := rd.Checkout(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 3 {
		t.Fatalf("recovered checkout(v2) = %d rows, want %d", len(got), len(want))
	}
	if r.DB().HasTable("work") {
		t.Fatal("staged table resurrected after its commit was replayed")
	}
}

// listSegments names the wal-*.log segment files in a log directory (the
// lock file and anything else is excluded), sorted by name = first LSN.
func listSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			out = append(out, e.Name())
		}
	}
	return out
}

// copyWALDir clones the store's files (snapshot + log segments) into a fresh
// directory, optionally cutting the newest segment at cutBytes.
func copyWALDir(t *testing.T, src string, cut int64) string {
	t.Helper()
	dst := t.TempDir()
	if data, err := os.ReadFile(filepath.Join(src, "store.odb")); err == nil {
		if err := os.WriteFile(filepath.Join(dst, "store.odb"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	walSrc := filepath.Join(src, "store.odb.wal")
	if err := os.MkdirAll(filepath.Join(dst, "store.odb.wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Segment names sort by first LSN, so the last one is the newest; the
	// cut applies to it.
	segs := listSegments(t, walSrc)
	for i, name := range segs {
		data, err := os.ReadFile(filepath.Join(walSrc, name))
		if err != nil {
			t.Fatal(err)
		}
		if i == len(segs)-1 && cut >= 0 && cut < int64(len(data)) {
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, "store.odb.wal", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWALKillPoint is the acceptance test: the log is cut at arbitrary byte
// offsets (simulating a crash with a partially flushed tail) and recovery
// must always come back with exactly a prefix of the acknowledged commits —
// never an error, never a half-applied version — and stay writable.
func TestWALKillPoint(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncOff)
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	acked := []VersionID{}
	last := VersionID(0)
	for i := 0; i < 6; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		last = mustCommit(t, d, parents, fmt.Sprintf("c%d", i), int64(i), int64(i)+100)
		acked = append(acked, last)
	}
	crash(s)

	seg := filepath.Join(dir, "store.odb.wal")
	segs := listSegments(t, seg)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	fi, err := os.Stat(filepath.Join(seg, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	step := int64(7)
	if testing.Short() {
		step = 97
	}
	prevRecovered := -1
	for cut := int64(0); cut <= size; cut += step {
		if cut+step > size {
			cut = size // always test the clean tail too
		}
		cutDir := copyWALDir(t, dir, cut)
		r := openWALStore(t, cutDir, FsyncOff)
		nVersions := 0
		if names := r.List(); len(names) == 1 {
			rd, err := r.Dataset("prot")
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			vs := rd.Versions()
			nVersions = len(vs)
			// Exactly a prefix of the acknowledged versions.
			for i, v := range vs {
				if v != acked[i] {
					t.Fatalf("cut %d: recovered versions %v are not a prefix of %v", cut, vs, acked)
				}
			}
			if nVersions > 0 {
				rows, err := rd.Checkout(vs[nVersions-1])
				if err != nil || len(rows) != 2 {
					t.Fatalf("cut %d: checkout latest = %d rows, %v", cut, len(rows), err)
				}
				// Recovered store accepts new work.
				mustCommit(t, rd, []VersionID{vs[nVersions-1]}, "again", 777)
			}
		} else if len(r.List()) > 1 {
			t.Fatalf("cut %d: unexpected datasets %v", cut, r.List())
		}
		if nVersions < prevRecovered-0 && cut != size {
			// Larger cuts can only recover >= as much as smaller cuts.
			t.Fatalf("cut %d: recovered %d versions, previously %d", cut, nVersions, prevRecovered)
		}
		prevRecovered = nVersions
		crash(r)
		if cut == size {
			if nVersions != len(acked) {
				t.Fatalf("uncut log recovered %d versions, want %d", nVersions, len(acked))
			}
			break
		}
	}
}

// TestWALConcurrentCommitsWithCheckpoints hammers four datasets from four
// goroutines while checkpoints run concurrently, then crashes and checks
// that every acknowledged commit survived.
func TestWALConcurrentCommitsWithCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncOff)
	const (
		datasets = 4
		commits  = 25
	)
	names := make([]string, datasets)
	for i := range names {
		names[i] = fmt.Sprintf("ds%d", i)
		if _, err := s.Init(names[i], protCols(), InitOptions{PrimaryKey: []string{"id"}}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	acked := make([][]VersionID, datasets)
	for i := 0; i < datasets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := s.Dataset(names[i])
			if err != nil {
				t.Errorf("%s: %v", names[i], err)
				return
			}
			var last VersionID
			for c := 0; c < commits; c++ {
				var parents []VersionID
				if last != 0 {
					parents = []VersionID{last}
				}
				v, err := d.Commit([]Row{{Int(int64(c)), String("x")}}, parents, fmt.Sprintf("c%d", c))
				if err != nil {
					t.Errorf("%s commit %d: %v", names[i], c, err)
					return
				}
				last = v
				acked[i] = append(acked[i], v)
			}
		}(i)
	}
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
				if err := s.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stopCkpt)
	ckptWG.Wait()
	if t.Failed() {
		return
	}
	crash(s)

	r := openWALStore(t, dir, FsyncOff)
	defer crash(r)
	for i, name := range names {
		rd, err := r.Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := rd.Versions()
		if len(got) != len(acked[i]) {
			t.Fatalf("%s: recovered %d versions, acked %d", name, len(got), len(acked[i]))
		}
		rows, err := rd.Checkout(got[len(got)-1])
		if err != nil || len(rows) != 1 {
			t.Fatalf("%s: checkout latest: %d rows, %v", name, len(rows), err)
		}
	}
}

// TestWALInMemoryStore uses the log as the sole persistence: a NewStore with
// an explicit WAL directory recovers purely from the log.
func TestWALInMemoryStore(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "log")
	s := NewStore()
	if err := s.EnableWAL(WALConfig{Dir: walDir, Policy: FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	d, err := s.Init("mem", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1)
	crash(s)

	r := NewStore()
	if err := r.EnableWAL(WALConfig{Dir: walDir, Policy: FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	defer crash(r)
	rd, err := r.Dataset("mem")
	if err != nil {
		t.Fatal(err)
	}
	assertVersions(t, rd, v1)
}

// TestWALOptimizeRecovery replays a partition-optimizer run: the optimize
// record re-runs LYRESPLIT deterministically over the recovered graph.
func TestWALOptimizeRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncOff)
	d, err := s.Init("part", protCols(), InitOptions{Model: PartitionedRlist, PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	last := VersionID(0)
	for i := 0; i < 8; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		ids := make([]int64, 0, 4)
		for j := 0; j < 4; j++ {
			ids = append(ids, int64(i*4+j))
		}
		last = mustCommit(t, d, parents, fmt.Sprintf("c%d", i), ids...)
	}
	if _, err := d.Optimize(2.0); err != nil {
		t.Fatal(err)
	}
	v9 := mustCommit(t, d, []VersionID{last}, "after optimize", 500)
	want, err := d.Checkout(v9)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openWALStore(t, dir, FsyncOff)
	defer crash(r)
	rd, err := r.Dataset("part")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rd.Versions()); got != 9 {
		t.Fatalf("recovered %d versions, want 9", got)
	}
	got, err := rd.Checkout(v9)
	if err != nil || len(got) != len(want) {
		t.Fatalf("checkout after optimize replay: %d rows, %v; want %d", len(got), err, len(want))
	}
}

// TestWALBranchMergeRecovery replays the full branch/merge record set:
// branch create/advance/delete and true merge commits must reconstruct the
// identical branch heads, lineage bitmaps, and merged record sets.
func TestWALBranchMergeRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncAlways)
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1, 2)
	v2 := mustCommit(t, d, []VersionID{v1}, "ours", 1, 2, 3)
	v3 := mustCommit(t, d, []VersionID{v1}, "theirs", 1, 2, 4)
	if _, err := d.CreateBranch("main", v2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateBranch("doomed", v1); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteBranch("doomed"); err != nil {
		t.Fatal(err)
	}
	// True merge into the branch: logs one TypeMerge record that also
	// advances the head on replay.
	res, err := d.Merge("main", fmt.Sprint(v3), MergeFail, "merge v3")
	if err != nil {
		t.Fatal(err)
	}
	// Fast-forward a second branch: logs TypeBranchAdvance.
	if _, err := d.CreateBranch("trail", v1); err != nil {
		t.Fatal(err)
	}
	ff, err := d.Merge("trail", fmt.Sprint(res.Version), MergeFail, "")
	if err != nil || !ff.FastForward {
		t.Fatalf("expected fast-forward, got %+v, %v", ff, err)
	}
	wantMain, err := d.Branch("main")
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := d.Checkout(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openWALStore(t, dir, FsyncAlways)
	defer crash(r)
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Branch("main")
	if err != nil {
		t.Fatal(err)
	}
	if got.Head != wantMain.Head || !got.Lineage.Equal(wantMain.Lineage) {
		t.Fatalf("recovered main = head %d lineage %v, want head %d lineage %v",
			got.Head, got.Lineage.ToSlice(), wantMain.Head, wantMain.Lineage.ToSlice())
	}
	if !got.CreatedAt.Equal(wantMain.CreatedAt) {
		t.Fatalf("recovered creation time %v, want %v", got.CreatedAt, wantMain.CreatedAt)
	}
	if trail, err := rd.Branch("trail"); err != nil || trail.Head != res.Version {
		t.Fatalf("recovered trail = %+v, %v", trail, err)
	}
	if _, err := rd.Branch("doomed"); err == nil {
		t.Fatal("deleted branch resurrected by replay")
	}
	rows, err := rd.Checkout(res.Version)
	if err != nil || len(rows) != len(wantRows) {
		t.Fatalf("recovered merge checkout: %d rows, %v; want %d", len(rows), err, len(wantRows))
	}
	// The recovered store keeps merging.
	v6 := mustCommit(t, rd, []VersionID{res.Version}, "post", 9)
	if post, err := rd.Merge("main", fmt.Sprint(v6), MergeFail, ""); err != nil || !post.FastForward {
		t.Fatalf("post-recovery merge = %+v, %v", post, err)
	}
}

// TestWALKillPointBranchMerge extends the kill-point matrix to branch/merge
// records: the log (holding commits, branch creations, a conflicting merge
// resolved by policy, and branch advances) is cut at arbitrary offsets;
// every cut must recover a consistent prefix — branch heads always point at
// existing versions, lineage bitmaps always equal the head's ancestry — and
// the full log must replay to the identical branch head.
func TestWALKillPointBranchMerge(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncOff)
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustCommit(t, d, nil, "v1", 1, 2, 3)
	if _, err := d.CreateBranch("main", v1); err != nil {
		t.Fatal(err)
	}
	v2 := mustCommit(t, d, []VersionID{v1}, "ours", 1, 2, 3, 10)
	v3 := mustCommit(t, d, []VersionID{v1}, "theirs", 1, 2, 3, 20)
	// Advance main onto ours via fast-forward, then a true merge of theirs.
	if _, err := d.Merge("main", fmt.Sprint(v2), MergeFail, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Merge("main", fmt.Sprint(v3), MergeFail, "true merge"); err != nil {
		t.Fatal(err)
	}
	// Conflicting pair resolved by policy (exercises TypeMerge with a
	// non-default policy on replay).
	v5 := mustCommit(t, d, []VersionID{v1}, "left", 1, 2, 3, 30)
	v6 := mustCommit(t, d, []VersionID{v1}, "right", 1, 2, 3, 30)
	_ = v5
	if _, err := d.Merge("main", fmt.Sprint(v6), MergeTheirs, "resolved"); err != nil {
		t.Fatal(err)
	}
	wantHead, err := d.Branch("main")
	if err != nil {
		t.Fatal(err)
	}
	wantVersions := len(d.Versions())
	crash(s)

	seg := filepath.Join(dir, "store.odb.wal")
	segs := listSegments(t, seg)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	fi, err := os.Stat(filepath.Join(seg, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	step := int64(13)
	if testing.Short() {
		step = 131
	}
	for cut := int64(0); cut <= size; cut += step {
		if cut+step > size {
			cut = size
		}
		cutDir := copyWALDir(t, dir, cut)
		r := openWALStore(t, cutDir, FsyncOff)
		if names := r.List(); len(names) == 1 {
			rd, err := r.Dataset("prot")
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			// Every recovered branch is internally consistent: its head
			// exists and its lineage is exactly the head's ancestry.
			for _, b := range rd.Branches() {
				if _, err := rd.Info(b.Head); err != nil {
					t.Fatalf("cut %d: branch %s head %d missing: %v", cut, b.Name, b.Head, err)
				}
				anc, err := rd.Ancestors(b.Head)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if want := int64(len(anc) + 1); b.Lineage.Cardinality() != want {
					t.Fatalf("cut %d: branch %s lineage has %d versions, ancestry says %d",
						cut, b.Name, b.Lineage.Cardinality(), want)
				}
				if !b.Lineage.Contains(int64(b.Head)) {
					t.Fatalf("cut %d: branch %s lineage misses its own head", cut, b.Name)
				}
			}
			// The recovered store accepts further branch/merge work.
			if vs := rd.Versions(); len(vs) >= 2 {
				if _, err := rd.Merge(fmt.Sprint(vs[len(vs)-1]), fmt.Sprint(vs[0]), MergeOurs, "probe"); err != nil {
					t.Fatalf("cut %d: post-recovery merge: %v", cut, err)
				}
			}
		}
		if cut == size {
			rd, err := r.Dataset("prot")
			if err != nil {
				t.Fatal(err)
			}
			// Replay of the complete log converges to the identical head.
			b, err := rd.Branch("main")
			if err != nil {
				t.Fatalf("uncut log lost branch main: %v", err)
			}
			if b.Head != wantHead.Head || !b.Lineage.Equal(wantHead.Lineage) {
				t.Fatalf("uncut replay head = %d, want %d", b.Head, wantHead.Head)
			}
			// The probe merge above may have appended one version.
			if got := len(rd.Versions()); got < wantVersions {
				t.Fatalf("uncut replay recovered %d versions, want >= %d", got, wantVersions)
			}
			crash(r)
			break
		}
		crash(r)
	}
}

// TestWALStatusDisabled: WALStatus is meaningful without a WAL too.
func TestWALStatusDisabled(t *testing.T) {
	s := NewStore()
	st := s.WALStatus()
	if st.Enabled || st.AppliedLSN != 0 || st.AppendError != "" {
		t.Fatalf("zero-state status = %+v", st)
	}
	if s.WALEnabled() {
		t.Fatal("WALEnabled on a plain store")
	}
}

// TestWALKillPointOptimizeMigrate extends the kill-point matrix to the
// optimize-migrate record: a background repartitioning is WAL-logged batch by
// batch, and the log is cut at arbitrary byte offsets across the whole
// migration. Every cut must recover to a consistent layout — some replayed
// prefix of the batch sequence — where every recovered version still checks
// out its exact acknowledged contents, and the store stays writable.
func TestWALKillPointOptimizeMigrate(t *testing.T) {
	dir := t.TempDir()
	s := openWALStore(t, dir, FsyncOff)
	d, err := s.Init("part", protCols(), InitOptions{Model: PartitionedRlist, PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	// Growing chain: version i carries 3*(i+1) rows, so the single initial
	// partition drifts and the plan needs several small batches.
	acked := []VersionID{}
	last := VersionID(0)
	next := int64(0)
	for i := 0; i < 10; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		ids := make([]int64, 0, next+3)
		for id := int64(0); id < next+3; id++ {
			ids = append(ids, id)
		}
		next += 3
		last = mustCommit(t, d, parents, fmt.Sprintf("c%d", i), ids...)
		acked = append(acked, last)
	}

	o, err := s.StartPartitionOptimizer(PartitionOptimizerConfig{
		Mu:        MuDisabled,
		BatchRows: 24, // force a multi-batch migration = many kill points
		Interval:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := o.Trigger("part")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches < 3 {
		t.Fatalf("migration used %d batches; the matrix needs a multi-batch log", rep.Batches)
	}
	// Traffic after the migration: the log tail mixes commit and migrate
	// records, so cuts land before, inside, and after the batch sequence.
	after := mustCommit(t, d, []VersionID{last}, "after migrate", 999)
	acked = append(acked, after)
	o.Stop()

	// Contents are invariant under migration, so one fingerprint per version
	// is the oracle for every cut.
	want := make(map[VersionID][]string, len(acked))
	for _, v := range acked {
		want[v] = sortedCheckout(t, d, v)
	}
	crash(s)

	seg := filepath.Join(dir, "store.odb.wal")
	segs := listSegments(t, seg)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	fi, err := os.Stat(filepath.Join(seg, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	step := int64(13)
	if testing.Short() {
		step = 251
	}
	for cut := int64(0); cut <= size; cut += step {
		if cut+step > size {
			cut = size // always include the clean tail
		}
		cutDir := copyWALDir(t, dir, cut)
		r := openWALStore(t, cutDir, FsyncOff)
		if names := r.List(); len(names) == 1 {
			rd, err := r.Dataset("part")
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			vs := rd.Versions()
			for i, v := range vs {
				if v != acked[i] {
					t.Fatalf("cut %d: recovered versions %v are not a prefix of %v", cut, vs, acked)
				}
				got := sortedCheckout(t, rd, v)
				if len(got) != len(want[v]) {
					t.Fatalf("cut %d: version %d has %d rows, want %d", cut, v, len(got), len(want[v]))
				}
				for j := range got {
					if got[j] != want[v][j] {
						t.Fatalf("cut %d: version %d row %d diverged after replay", cut, v, j)
					}
				}
			}
			if n := len(vs); n > 0 {
				// Recovered store accepts new work mid-migration-replay too.
				mustCommit(t, rd, []VersionID{vs[n-1]}, "again", 777)
			}
		} else if len(r.List()) > 1 {
			t.Fatalf("cut %d: unexpected datasets %v", cut, r.List())
		}
		crash(r)
		if cut == size {
			break
		}
	}
}
