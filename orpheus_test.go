package orpheusdb

import (
	"path/filepath"
	"testing"
	"time"
)

func geneStore(t *testing.T) (*Store, *Dataset, VersionID, VersionID) {
	t.Helper()
	store := NewStore()
	cols := []Column{
		{Name: "gene", Type: KindString},
		{Name: "score", Type: KindInt},
	}
	ds, err := store.Init("genes", cols, InitOptions{PrimaryKey: []string{"gene"}})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ds.Commit([]Row{
		{String("brca1"), Int(10)},
		{String("tp53"), Int(20)},
	}, nil, "import")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ds.Commit([]Row{
		{String("brca1"), Int(15)},
		{String("tp53"), Int(20)},
		{String("egfr"), Int(5)},
	}, []VersionID{v1}, "update scores")
	if err != nil {
		t.Fatal(err)
	}
	return store, ds, v1, v2
}

func TestRunVersionOfCVD(t *testing.T) {
	store, _, _, _ := geneStore(t)
	r, err := store.Run("SELECT count(*) FROM VERSION 2 OF CVD genes")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3 {
		t.Fatalf("count = %d", r.Rows[0][0].I)
	}
	// Temp tables must be cleaned up.
	for _, n := range store.DB().TableNames() {
		if len(n) > 13 && n[:13] == "__orpheus_tmp" {
			t.Fatalf("leftover temp table %s", n)
		}
	}
	if _, err := store.Run("SELECT * FROM VERSION 9 OF CVD genes"); err == nil {
		t.Fatal("missing version accepted")
	}
	if _, err := store.Run("SELECT * FROM VERSION 1 OF CVD nope"); err == nil {
		t.Fatal("missing CVD accepted")
	}
}

func TestRunAllVersionsView(t *testing.T) {
	store, _, _, _ := geneStore(t)
	r, err := store.Run("SELECT vid, count(*) AS c FROM CVD genes GROUP BY vid ORDER BY vid")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][1].I != 2 || r.Rows[1][1].I != 3 {
		t.Fatalf("per-version counts: %v", r.Rows)
	}
	// Version-property search via SQL: versions where brca1's score > 12.
	r, err = store.Run("SELECT DISTINCT vid FROM CVD genes WHERE gene = 'brca1' AND score > 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Fatalf("property search: %v", r.Rows)
	}
}

func TestRunCrossVersionJoin(t *testing.T) {
	store, _, _, _ := geneStore(t)
	r, err := store.Run(`SELECT a.gene FROM VERSION 1 OF CVD genes AS a
		JOIN VERSION 2 OF CVD genes AS b ON a.gene = b.gene
		WHERE a.score <> b.score`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "brca1" {
		t.Fatalf("cross-version join: %v", r.Rows)
	}
}

func TestRunSubqueryRewrite(t *testing.T) {
	store, _, _, _ := geneStore(t)
	// CVD references inside IN subqueries are rewritten too.
	r, err := store.Run("SELECT gene FROM VERSION 2 OF CVD genes WHERE gene IN (SELECT gene FROM VERSION 1 OF CVD genes) ORDER BY gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("subquery rewrite: %v", r.Rows)
	}
}

func TestRunScriptAndPlainSQL(t *testing.T) {
	store, _, _, _ := geneStore(t)
	r, err := store.RunScript(`
		CREATE TABLE notes (gene text, note text);
		INSERT INTO notes VALUES ('brca1', 'important');
		SELECT count(*) FROM notes;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Fatalf("script: %v", r.Rows)
	}
}

func TestStagingTableFlow(t *testing.T) {
	store, ds, _, v2 := geneStore(t)
	if err := ds.CheckoutToTable("mytab", v2); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Run("UPDATE mytab SET score = 99 WHERE gene = 'egfr'"); err != nil {
		t.Fatal(err)
	}
	v3, err := ds.CommitTable("mytab", "bump egfr")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ds.Checkout(v3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r[0].S == "egfr" && r[1].I == 99 {
			found = true
		}
	}
	if !found {
		t.Fatalf("edit lost: %v", rows)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, ds, _, v2 := geneStore(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "genes.csv")
	if err := ds.CheckoutToCSV(path, v2); err != nil {
		t.Fatal(err)
	}
	v4, err := ds.CommitCSV(path, "recommit")
	if err != nil {
		t.Fatal(err)
	}
	onlyA, onlyB, err := ds.Diff(v4, v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyA) != 0 || len(onlyB) != 0 {
		t.Fatalf("roundtrip changed data: %v %v", onlyA, onlyB)
	}
	info, err := ds.Info(v4)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Parents) != 1 || info.Parents[0] != v2 {
		t.Fatalf("csv provenance: %v", info.Parents)
	}
}

func TestInitFromCSV(t *testing.T) {
	store := NewStore()
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := writeFile(path, "k:integer,v:string\n1,a\n2,b\n"); err != nil {
		t.Fatal(err)
	}
	ds, v, err := store.InitFromCSV("d", path, InitOptions{PrimaryKey: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ds.Checkout(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1].S == "" {
		t.Fatalf("csv init: %v", rows)
	}
	// Untyped headers default to string.
	path2 := filepath.Join(dir, "u.csv")
	if err := writeFile(path2, "a,b\nx,y\n"); err != nil {
		t.Fatal(err)
	}
	cols, _, err := ReadCSV(path2)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Type != KindString {
		t.Fatal("untyped column should be string")
	}
	// Malformed rows rejected.
	path3 := filepath.Join(dir, "bad.csv")
	if err := writeFile(path3, "a:integer\nnotanumber\n"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCSV(path3); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.odb")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cols := []Column{{Name: "k", Type: KindInt}}
	ds, err := store.Init("d", cols, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ds.Commit([]Row{{Int(7)}}, nil, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := store2.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ds2.Checkout(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 7 {
		t.Fatalf("reload: %v", rows)
	}
	if got := store2.List(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("List: %v", got)
	}
}

func TestUsersAndDrop(t *testing.T) {
	store, _, _, _ := geneStore(t)
	if store.WhoAmI() != "default" {
		t.Fatal("default user wrong")
	}
	if err := store.CreateUser("ann"); err != nil {
		t.Fatal(err)
	}
	if store.WhoAmI() != "ann" {
		t.Fatal("CreateUser should switch user")
	}
	if err := store.SetUser(""); err == nil {
		t.Fatal("empty user accepted")
	}
	if got := store.Users(); len(got) != 1 {
		t.Fatalf("Users: %v", got)
	}
	if err := store.Drop("genes"); err != nil {
		t.Fatal(err)
	}
	if len(store.List()) != 0 {
		t.Fatal("drop did not remove CVD")
	}
}

func TestSearchVersionsAndLastModified(t *testing.T) {
	_, ds, _, v2 := geneStore(t)
	hits, err := ds.SearchVersions(func(info *VersionInfo) bool {
		return info.NumRecords >= 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != v2 {
		t.Fatalf("search: %v", hits)
	}
	lm, err := ds.LastModified()
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(lm) > time.Minute {
		t.Fatalf("LastModified: %v", lm)
	}
}

func TestDatasetAccessors(t *testing.T) {
	_, ds, v1, v2 := geneStore(t)
	if ds.Name() != "genes" || ds.Model() != SplitByRlist {
		t.Fatal("accessors wrong")
	}
	if len(ds.Columns()) != 2 || len(ds.PrimaryKey()) != 1 {
		t.Fatal("schema accessors wrong")
	}
	if ds.LatestVersion() != v2 {
		t.Fatal("LatestVersion wrong")
	}
	if got := ds.Versions(); len(got) != 2 || got[0] != v1 {
		t.Fatalf("Versions: %v", got)
	}
	if ds.StorageBytes() <= 0 {
		t.Fatal("StorageBytes")
	}
	anc, err := ds.Ancestors(v2)
	if err != nil || len(anc) != 1 {
		t.Fatalf("Ancestors: %v %v", anc, err)
	}
	desc, err := ds.Descendants(v1)
	if err != nil || len(desc) != 1 {
		t.Fatalf("Descendants: %v %v", desc, err)
	}
}

func TestOptimizeViaPublicAPI(t *testing.T) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init("p", cols, InitOptions{Model: PartitionedRlist})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	parent := VersionID(0)
	var parents []VersionID
	for i := 0; i < 30; i++ {
		rows = append(rows, Row{Int(int64(i)), Int(int64(i * 2))})
		v, err := ds.Commit(append([]Row(nil), rows...), parents, "step")
		if err != nil {
			t.Fatal(err)
		}
		parent = v
		parents = []VersionID{parent}
	}
	res, err := ds.Optimize(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 1 {
		t.Fatal("no partitions")
	}
	if _, err := ds.Checkout(parent); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeWeightedPublicAPI(t *testing.T) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}}
	ds, err := store.Init("w", cols, InitOptions{Model: PartitionedRlist})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	var parents []VersionID
	for i := 0; i < 25; i++ {
		rows = append(rows, Row{Int(int64(i))})
		v, err := ds.Commit(append([]Row(nil), rows...), parents, "step")
		if err != nil {
			t.Fatal(err)
		}
		parents = []VersionID{v}
	}
	freq := ds.RecencyWeights(0.2, 10)
	if _, err := ds.OptimizeWeighted(2.0, freq); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Checkout(parents[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteInDMLStatements(t *testing.T) {
	store, _, _, _ := geneStore(t)
	if _, err := store.Run("CREATE TABLE snapshot (gene text, score int)"); err != nil {
		t.Fatal(err)
	}
	// INSERT ... SELECT from a version.
	r, err := store.Run("INSERT INTO snapshot SELECT gene, score FROM VERSION 2 OF CVD genes")
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 3 {
		t.Fatalf("insert-select: %d", r.Affected)
	}
	// UPDATE with a versioned subquery.
	if _, err := store.Run("UPDATE snapshot SET score = 0 WHERE gene IN (SELECT gene FROM VERSION 1 OF CVD genes)"); err != nil {
		t.Fatal(err)
	}
	r, err = store.Run("SELECT count(*) FROM snapshot WHERE score = 0")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Fatalf("update via versioned subquery: %v", r.Rows)
	}
	// DELETE with a versioned subquery.
	if _, err := store.Run("DELETE FROM snapshot WHERE gene IN (SELECT gene FROM VERSION 1 OF CVD genes)"); err != nil {
		t.Fatal(err)
	}
	r, err = store.Run("SELECT count(*) FROM snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Fatalf("delete via versioned subquery: %v", r.Rows)
	}
}

func TestCommitWithSchemaPublicAPI(t *testing.T) {
	_, ds, _, v2 := geneStore(t)
	wide := []Column{
		{Name: "gene", Type: KindString},
		{Name: "score", Type: KindFloat},    // widened
		{Name: "pathway", Type: KindString}, // new
	}
	v3, err := ds.CommitWithSchema(wide, []Row{
		{String("brca1"), Float(0.5), String("hr")},
	}, []VersionID{v2}, "evolve")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ds.Checkout(v3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 3 {
		t.Fatalf("evolved checkout: %v", rows)
	}
	if ds.Columns()[1].Type != KindFloat {
		t.Fatal("pool not widened")
	}
}

func TestSelectIntoThroughStore(t *testing.T) {
	store, _, _, _ := geneStore(t)
	if _, err := store.Run("SELECT gene INTO mygenes FROM VERSION 2 OF CVD genes WHERE score > 10"); err != nil {
		t.Fatal(err)
	}
	r, err := store.Run("SELECT count(*) FROM mygenes")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Fatalf("select into: %v", r.Rows)
	}
}
