module orpheusdb

go 1.22
