package orpheusdb

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Disk-backend acceptance suite: the WAL crash-recovery matrices re-run
// against the page store, plus restart fidelity and the headline scenario —
// a dataset larger than both the page budget and the checkout cache that
// commits, checkpoints, survives a kill, and checks out correctly.

// TestWALRecoveryMatrixDiskBackend re-runs the whole crash-recovery suite
// with every store opened on the disk backend. Checkpoints flush dirty pages
// into the diskv file instead of writing a gob snapshot; recovery stitches
// the committed page state together with the WAL tail exactly as the
// snapshot path does.
func TestWALRecoveryMatrixDiskBackend(t *testing.T) {
	walTestBackend = BackendDisk
	defer func() { walTestBackend = BackendMemory }()
	t.Run("NoCheckpoint", TestWALRecoveryNoCheckpoint)
	t.Run("AfterCheckpoint", TestWALRecoveryAfterCheckpoint)
	t.Run("CheckpointTruncatesLog", TestWALCheckpointTruncatesLog)
	t.Run("CommitTableRecovery", TestWALCommitTableRecovery)
	t.Run("KillPoint", TestWALKillPoint)
	t.Run("ConcurrentCommitsWithCheckpoints", TestWALConcurrentCommitsWithCheckpoints)
	t.Run("OptimizeRecovery", TestWALOptimizeRecovery)
	t.Run("BranchMergeRecovery", TestWALBranchMergeRecovery)
	t.Run("KillPointBranchMerge", TestWALKillPointBranchMerge)
	t.Run("KillPointOptimizeMigrate", TestWALKillPointOptimizeMigrate)
}

// TestDiskBackendRestartByteIdenticalCheckout closes a disk store cleanly and
// reopens it, asserting every version's checkout is byte-for-byte identical
// across the restart (not just row counts: the full rendered rows).
func TestDiskBackendRestartByteIdenticalCheckout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	s, err := OpenStoreWithOptions(path, StoreOptions{Backend: BackendDisk})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Init("prot", protCols(), InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	var versions []VersionID
	last := VersionID(0)
	for i := 0; i < 5; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		ids := make([]int64, 0, 40)
		for j := 0; j < 40; j++ {
			ids = append(ids, int64(i*40+j))
		}
		last = mustCommit(t, d, parents, fmt.Sprintf("c%d", i), ids...)
		versions = append(versions, last)
	}
	want := make(map[VersionID][]string, len(versions))
	for _, v := range versions {
		want[v] = sortedCheckout(t, d, v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStoreWithOptions(path, StoreOptions{Backend: BackendDisk})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.BackendKind() != BackendDisk {
		t.Fatalf("reopened as %q", r.BackendKind())
	}
	rd, err := r.Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		got := sortedCheckout(t, rd, v)
		if len(got) != len(want[v]) {
			t.Fatalf("version %d: %d rows after restart, want %d", v, len(got), len(want[v]))
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("version %d row %d changed across restart:\n  before %s\n  after  %s",
					v, i, want[v][i], got[i])
			}
		}
	}
}

// TestDiskBackendDatasetLargerThanBudgets is the acceptance scenario from the
// issue: a dataset bigger than both the resident page budget and the checkout
// cache commits, checkpoints, survives a kill-style crash with a WAL tail,
// and checks out correctly — cold reads flowing through ranged backend page
// fetches with the cache as the only hot tier.
func TestDiskBackendDatasetLargerThanBudgets(t *testing.T) {
	dir := t.TempDir()
	const pageBudget = 64 << 10 // 64 KiB resident pages
	const cacheBudget = 32 << 10
	open := func() *Store {
		s, err := OpenStoreWithOptions(filepath.Join(dir, "store.odb"),
			StoreOptions{Backend: BackendDisk, PageBudgetBytes: pageBudget})
		if err != nil {
			t.Fatal(err)
		}
		s.SetSaveDelay(time.Hour)
		s.SetCacheBudget(cacheBudget)
		if err := s.EnableWAL(WALConfig{Policy: FsyncOff}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	d, err := s.Init("big", []Column{
		{Name: "id", Type: KindInt},
		{Name: "payload", Type: KindString},
	}, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	// ~100-byte payloads × 600 rows/version × 6 versions ≈ 360 KiB of data:
	// several times the page budget, an order of magnitude over the cache.
	pad := strings.Repeat("x", 100)
	var versions []VersionID
	last := VersionID(0)
	for v := 0; v < 6; v++ {
		rows := make([]Row, 600)
		for i := range rows {
			rows[i] = Row{Int(int64(v*600 + i)), String(fmt.Sprintf("%s-%d", pad, v*600+i))}
		}
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		nv, err := d.Commit(rows, parents, fmt.Sprintf("bulk %d", v))
		if err != nil {
			t.Fatal(err)
		}
		last = nv
		versions = append(versions, nv)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().ResidentBytes(); got > pageBudget {
		t.Fatalf("resident %d bytes exceeds page budget %d after checkpoint", got, pageBudget)
	}
	// Acknowledged work past the checkpoint rides only in the WAL.
	tail, err := d.Commit([]Row{{Int(999999), String("tail")}}, []VersionID{last}, "post-checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[VersionID][]string)
	for _, v := range append(versions, tail) {
		want[v] = sortedCheckout(t, d, v)
	}
	crash(s)

	r := open()
	defer crash(r)
	rd, err := r.Dataset("big")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(versions, tail) {
		got := sortedCheckout(t, rd, v)
		if len(got) != len(want[v]) {
			t.Fatalf("version %d: recovered %d rows, want %d", v, len(got), len(want[v]))
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("version %d row %d diverged after crash recovery", v, i)
			}
		}
	}
	if faults := r.DB().Stats().PageFaults.Load(); faults == 0 {
		t.Fatal("no page faults: the dataset cannot have exceeded the resident budget")
	}
}
