package orpheusdb

import (
	"fmt"
	"os"

	"orpheusdb/internal/core"
	"orpheusdb/internal/obs"
)

// Workload telemetry: the per-dataset access heat tables and the retained
// metrics history. Heat is recorded by the CVDs themselves (core.Heat,
// attached next to the metrics handles); the history sampler is a
// store-owned goroutine snapshotting the registry into tiered rings, with
// its retained points persisted through the same checkpoint path as the
// engine snapshot (a `<path>.history` sidecar).

// HeatSnapshot re-exports the aggregated per-dataset heat table.
type HeatSnapshot = core.HeatSnapshot

// HistoryOptions and HistoryTier re-export the sampler configuration so
// embedders and the CLI need not import internal/obs.
type (
	HistoryOptions = obs.HistoryOptions
	HistoryTier    = obs.HistoryTier
)

// Heat returns the dataset's aggregated access-heat table: the topK hottest
// versions by checkout count, cache hit ratios, the sliding-window op rate,
// and per-branch checkout rates (recent accesses joined against each
// branch's lineage bitmap).
func (d *Dataset) Heat(topK int) (HeatSnapshot, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return HeatSnapshot{}, err
	}
	return d.cvd.Heat().Snapshot(topK, d.cvd.Branches()), nil
}

// HeatWeights returns the dataset's observed per-version checkout
// frequencies (nil when nothing was recorded) — the optimizer's drift
// weights.
func (d *Dataset) HeatWeights() map[VersionID]int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.Heat().Weights()
}

// historySidecar is where the retained metrics history persists, next to the
// store file.
func (s *Store) historySidecar() string {
	if s.path == "" {
		return ""
	}
	return s.path + ".history"
}

// StartMetricsHistory launches the retained metrics sampler: a goroutine
// snapshotting every registry counter, gauge, and histogram digest into
// fixed rings at the configured retention tiers. For persistent stores, a
// prior run's sidecar (written by Save) is restored first, so history
// survives a restart. At most one history runs per store.
func (s *Store) StartMetricsHistory(opts obs.HistoryOptions) (*obs.History, error) {
	h, err := obs.NewHistory(s.obs.reg, opts)
	if err != nil {
		return nil, err
	}
	if sc := s.historySidecar(); sc != "" {
		if data, rerr := os.ReadFile(sc); rerr == nil {
			// Best-effort: a corrupt sidecar costs retained history, never
			// availability.
			_ = h.Restore(data)
		}
	}
	if !s.history.CompareAndSwap(nil, h) {
		return nil, fmt.Errorf("orpheusdb: metrics history already running")
	}
	h.Start()
	return h, nil
}

// MetricsHistory returns the running history sampler, or nil.
func (s *Store) MetricsHistory() *obs.History {
	return s.history.Load()
}

// StopMetricsHistory halts the sampler (persisting its final state for
// stores with a path) and detaches it. No-op when none is running.
func (s *Store) StopMetricsHistory() {
	h := s.history.Load()
	if h == nil {
		return
	}
	h.Stop()
	s.saveHistory()
	s.history.CompareAndSwap(h, nil)
}

// saveHistory writes the history sidecar. Best-effort by design: retained
// telemetry is auxiliary, so a failed write never degrades a checkpoint.
func (s *Store) saveHistory() {
	h := s.history.Load()
	sc := s.historySidecar()
	if h == nil || sc == "" {
		return
	}
	if data, err := h.Snapshot(); err == nil {
		_ = os.WriteFile(sc, data, 0o644)
	}
}
