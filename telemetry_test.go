package orpheusdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDatasetHeatAggregation drives the public Dataset surface and checks the
// heat table a server would serve: totals, hit ratio, hottest-first ordering,
// and the optimizer-facing weight map.
func TestDatasetHeatAggregation(t *testing.T) {
	_, ds, v1, v2 := geneStore(t)
	if _, err := ds.Checkout(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Checkout(v1); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := ds.Checkout(v2); err != nil {
		t.Fatal(err)
	}
	snap, err := ds.Heat(5)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Checkouts != 3 || snap.CacheHits != 1 || snap.Commits != 2 {
		t.Fatalf("heat totals = %+v", snap)
	}
	if len(snap.TopVersions) == 0 || snap.TopVersions[0].Version != v1 {
		t.Fatalf("top versions = %+v, want v1 hottest", snap.TopVersions)
	}
	w := ds.HeatWeights()
	// v1: 2 checkouts + 1 commit-parent credit; v2: 1 checkout.
	if w[v1] != 3 || w[v2] != 1 {
		t.Fatalf("weights = %v, want {v1:3 v2:1}", w)
	}
}

// TestMetricsHistorySidecarPersistence checks the restart story: a
// file-backed store saves its retained history next to the checkpoint, and a
// reopened store's sampler restores it before recording anything new.
func TestMetricsHistorySidecarPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.bin")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.StartMetricsHistory(HistoryOptions{
		Tiers: []HistoryTier{{Interval: time.Millisecond, Retain: time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.StartMetricsHistory(HistoryOptions{}); err == nil {
		t.Fatal("second sampler accepted on the same store")
	}
	if store.MetricsHistory() != h {
		t.Fatal("MetricsHistory lost the running sampler")
	}

	// Give the sampler real points to persist, then checkpoint.
	ds, err := store.Init("genes", []Column{{Name: "gene", Type: KindString}}, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ds.Commit([]Row{{String("brca1")}}, nil, "seed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Checkout(v1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(h.Query("orpheus_checkout_seconds", time.Time{})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler recorded no checkout series within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	store.StopMetricsHistory()
	if store.MetricsHistory() != nil {
		t.Fatal("sampler still attached after stop")
	}
	if _, err := os.Stat(path + ".history"); err != nil {
		t.Fatalf("history sidecar missing: %v", err)
	}
	wantSeries := len(h.Query("", time.Time{}))

	// Reopen: the restored sampler serves the prior run's series even before
	// its first tick.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := store2.StartMetricsHistory(HistoryOptions{
		Tiers: []HistoryTier{{Interval: time.Millisecond, Retain: time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.StopMetricsHistory()
	if got := len(h2.Query("", time.Time{})); got < wantSeries {
		t.Fatalf("restored %d series, want >= %d from the sidecar", got, wantSeries)
	}
	if len(h2.Query("orpheus_checkout_seconds", time.Time{})) == 0 {
		t.Fatal("restored history lost the checkout series")
	}
}
