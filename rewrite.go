package orpheusdb

import (
	"fmt"
	"sort"

	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/sql"
	"orpheusdb/internal/vgraph"
)

// The query translator (Section 2.3): SQL statements may reference
// `VERSION <v> OF CVD <name>` (one version as a relation) or `CVD <name>`
// (every version, with a leading vid column). Run materializes each such
// reference as a transient table, rewrites the statement to use it, executes,
// and cleans up — so the underlying engine stays completely unaware of
// versioning.

// stmtWrites reports whether a statement mutates named engine tables
// (INSERT/UPDATE/DELETE/DDL). Such statements run under the exclusive save
// lock so they cannot race other queries or commits touching the same
// tables; SELECTs run under the shared lock.
func stmtWrites(st sql.Stmt) bool {
	_, isSelect := st.(*sql.SelectStmt)
	return !isSelect
}

// lockForStmts acquires the save lock in the mode the statements need and
// returns the matching unlock.
func (s *Store) lockForStmts(stmts ...sql.Stmt) func() {
	for _, st := range stmts {
		if stmtWrites(st) {
			s.ioMu.Lock()
			return s.ioMu.Unlock
		}
	}
	s.ioMu.RLock()
	return s.ioMu.RUnlock
}

// lockAllDatasets takes every dataset's lock (in name order, so concurrent
// callers cannot deadlock) and returns the matching unlock. It backs raw SQL
// that names tables directly: such a statement may touch any dataset's
// backing tables, which are otherwise guarded only by per-dataset locks.
// Caller holds ioMu, so the catalog is stable.
func (s *Store) lockAllDatasets(write bool) func() {
	names := core.ListCVDs(s.db)
	sort.Strings(names)
	locked := make([]*Dataset, 0, len(names))
	for _, n := range names {
		d, err := s.dataset(n)
		if err != nil {
			continue
		}
		if write {
			d.mu.Lock()
		} else {
			d.mu.RLock()
		}
		locked = append(locked, d)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if write {
				locked[i].mu.Unlock()
			} else {
				locked[i].mu.RUnlock()
			}
		}
	}
}

// Run executes one SQL statement, resolving OrpheusDB version references.
// Run is safe for concurrent use. VERSION ... OF CVD references materialize
// into uniquely named transient tables under the referenced datasets' read
// locks, so versioned queries on dataset A run alongside commits on dataset
// B. Statements naming plain tables additionally take every dataset's lock
// (shared for SELECT, exclusive for DML, which also holds the save lock
// exclusively), since a raw name may resolve to any dataset's backing
// tables.
func (s *Store) Run(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	writes := stmtWrites(stmt)
	defer s.lockForStmts(stmt)()
	temps, plain, err := s.resolveStmt(stmt)
	defer s.dropTemps(temps)
	if err != nil {
		return nil, err
	}
	if writes || plain {
		defer s.lockAllDatasets(writes)()
	}
	res, err := sql.Run(s.db, stmt)
	if writes {
		// Even a failed statement may have applied partial mutations
		// (e.g. a multi-row INSERT failing midway), so persist either way.
		s.ScheduleSave()
	}
	return res, err
}

// RunScript executes a semicolon-separated script, returning the last result.
func (s *Store) RunScript(src string) (*Result, error) {
	stmts, err := sql.ParseScript(src)
	if err != nil {
		return nil, err
	}
	defer s.lockForStmts(stmts...)()
	res := &Result{}
	wrote := false
	// Writes applied by earlier statements must persist even when a later
	// statement fails (or the failing statement itself applied partially).
	defer func() {
		if wrote {
			s.ScheduleSave()
		}
	}()
	for _, stmt := range stmts {
		temps, plain, err := s.resolveStmt(stmt)
		if err != nil {
			s.dropTemps(temps)
			return nil, err
		}
		w := stmtWrites(stmt)
		wrote = wrote || w
		if w || plain {
			unlock := s.lockAllDatasets(w)
			res, err = sql.Run(s.db, stmt)
			unlock()
		} else {
			res, err = sql.Run(s.db, stmt)
		}
		s.dropTemps(temps)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (s *Store) dropTemps(temps []string) {
	for _, t := range temps {
		if s.db.HasTable(t) {
			_ = s.db.DropTable(t)
		}
	}
}

// resolveStmt walks the statement and materializes CVD references, returning
// the temp tables it created and whether the statement also references plain
// (non-versioned) tables by name.
func (s *Store) resolveStmt(stmt sql.Stmt) (_ []string, plain bool, _ error) {
	var temps []string
	var walkSelect func(sel *sql.SelectStmt) error

	resolveFrom := func(f sql.FromItem) error {
		ref, ok := f.(*sql.TableRef)
		if !ok {
			return nil
		}
		if ref.CVD == "" {
			plain = true
			return nil
		}
		name, err := s.materializeRef(ref)
		if err != nil {
			return err
		}
		temps = append(temps, name)
		if ref.Alias == "" {
			ref.Alias = ref.CVD
		}
		ref.Name = name
		ref.CVD = ""
		return nil
	}

	var walkFrom func(f sql.FromItem) error
	walkFrom = func(f sql.FromItem) error {
		switch t := f.(type) {
		case *sql.TableRef:
			return resolveFrom(t)
		case *sql.SubqueryRef:
			return walkSelect(t.Select)
		case *sql.JoinRef:
			if err := walkFrom(t.Left); err != nil {
				return err
			}
			if err := walkFrom(t.Right); err != nil {
				return err
			}
			return walkExpr(t.On, walkSelect)
		}
		return nil
	}

	walkSelect = func(sel *sql.SelectStmt) error {
		if sel == nil {
			return nil
		}
		for _, f := range sel.From {
			if err := walkFrom(f); err != nil {
				return err
			}
		}
		for _, item := range sel.Items {
			if err := walkExpr(item.Expr, walkSelect); err != nil {
				return err
			}
		}
		for _, e := range append([]sql.Expr{sel.Where, sel.Having}, sel.GroupBy...) {
			if err := walkExpr(e, walkSelect); err != nil {
				return err
			}
		}
		for _, o := range sel.OrderBy {
			if err := walkExpr(o.Expr, walkSelect); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	switch t := stmt.(type) {
	case *sql.SelectStmt:
		err = walkSelect(t)
	case *sql.InsertStmt:
		plain = true // targets a named table directly
		err = walkSelect(t.Select)
		for _, row := range t.Rows {
			for _, e := range row {
				if e2 := walkExpr(e, walkSelect); e2 != nil {
					err = e2
				}
			}
		}
	case *sql.UpdateStmt:
		plain = true // targets a named table directly
		for _, a := range t.Set {
			if e2 := walkExpr(a.Expr, walkSelect); e2 != nil {
				err = e2
			}
		}
		if e2 := walkExpr(t.Where, walkSelect); e2 != nil {
			err = e2
		}
	case *sql.DeleteStmt:
		plain = true // targets a named table directly
		err = walkExpr(t.Where, walkSelect)
	default:
		// DDL and anything else touches named tables.
		plain = true
	}
	return temps, plain, err
}

// walkExpr visits subqueries inside an expression tree.
func walkExpr(e sql.Expr, visit func(*sql.SelectStmt) error) error {
	switch t := e.(type) {
	case nil:
		return nil
	case *sql.BinaryExpr:
		if err := walkExpr(t.Left, visit); err != nil {
			return err
		}
		return walkExpr(t.Right, visit)
	case *sql.UnaryExpr:
		return walkExpr(t.X, visit)
	case *sql.IsNullExpr:
		return walkExpr(t.X, visit)
	case *sql.BetweenExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		if err := walkExpr(t.Lo, visit); err != nil {
			return err
		}
		return walkExpr(t.Hi, visit)
	case *sql.InExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		for _, l := range t.List {
			if err := walkExpr(l, visit); err != nil {
				return err
			}
		}
		if t.Select != nil {
			return visit(t.Select)
		}
	case *sql.ExistsExpr:
		return visit(t.Select)
	case *sql.SubqueryExpr:
		return visit(t.Select)
	case *sql.ArrayExpr:
		for _, el := range t.Elems {
			if err := walkExpr(el, visit); err != nil {
				return err
			}
		}
		if t.Select != nil {
			return visit(t.Select)
		}
	case *sql.IndexExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		return walkExpr(t.Index, visit)
	case *sql.FuncExpr:
		for _, a := range t.Args {
			if err := walkExpr(a, visit); err != nil {
				return err
			}
		}
	case *sql.CaseExpr:
		for _, w := range t.Whens {
			if err := walkExpr(w.Cond, visit); err != nil {
				return err
			}
			if err := walkExpr(w.Result, visit); err != nil {
				return err
			}
		}
		return walkExpr(t.Else, visit)
	}
	return nil
}

// materializeRef creates a transient table for a CVD reference: a single
// version's rows, a multi-version set-operation scan, or the all-versions
// view with a leading vid column. The table name is globally unique so
// concurrent queries never collide, and the dataset's read lock is held for
// the duration of the copy so a concurrent commit cannot interleave.
func (s *Store) materializeRef(ref *sql.TableRef) (string, error) {
	d, err := s.dataset(ref.CVD) // caller (Run) already holds ioMu
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("__orpheus_tmp_%s_%d", ref.CVD, s.tmpSeq.Add(1))
	d.mu.RLock()
	defer d.mu.RUnlock()
	if ref.Version >= 0 && len(ref.ExtraVersions) > 0 {
		// Multi-version scan: resolve membership with bitmap algebra over
		// the versions' rlists, then materialize only the result records —
		// the data table is never touched for records outside the result.
		vids := make([]vgraph.VersionID, 0, len(ref.ExtraVersions)+1)
		vids = append(vids, vgraph.VersionID(ref.Version))
		for _, v := range ref.ExtraVersions {
			vids = append(vids, vgraph.VersionID(v))
		}
		ops := make([]core.SetOp, len(ref.SetOps))
		for i, kw := range ref.SetOps {
			op, err := core.ParseSetOp(kw)
			if err != nil {
				return "", err
			}
			ops[i] = op
		}
		rows, err := d.cvd.MultiVersionCheckout(vids, ops)
		if err != nil {
			return "", err
		}
		t, err := s.db.CreateTable(name, d.cvd.Columns())
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			if _, err := t.Insert(r); err != nil {
				return "", err
			}
		}
		return name, nil
	}
	if ref.Version >= 0 {
		vid := vgraph.VersionID(ref.Version)
		rows, err := d.cvd.Checkout(vid)
		if err != nil {
			return "", err
		}
		t, err := s.db.CreateTable(name, d.cvd.Columns())
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			if _, err := t.Insert(r); err != nil {
				return "", err
			}
		}
		return name, nil
	}
	// All-versions view: vid + data attributes, one row per
	// (version, record) pair — the "table with versioned records" of
	// Figure 1a, generated on the fly.
	cols := append([]engine.Column{{Name: "vid", Type: engine.KindInt}}, d.cvd.Columns()...)
	t, err := s.db.CreateTable(name, cols)
	if err != nil {
		return "", err
	}
	for _, v := range d.cvd.Versions() {
		rows, err := d.cvd.Checkout(v)
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			row := make(engine.Row, 0, len(r)+1)
			row = append(row, engine.IntValue(int64(v)))
			row = append(row, r...)
			if _, err := t.Insert(row); err != nil {
				return "", err
			}
		}
	}
	return name, nil
}
