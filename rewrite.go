package orpheusdb

import (
	"context"
	"sort"
	"strconv"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/sql"
	"orpheusdb/internal/vgraph"
)

// The query translator (Section 2.3): SQL statements may reference
// `VERSION <v> OF CVD <name>` (one version as a relation) or `CVD <name>`
// (every version, with a leading vid column). Run resolves each such
// reference through a CVDSource that serves the materialized record set
// straight from the checkout cache (internal/cache) when warm — no transient
// tables are created, and the underlying engine stays completely unaware of
// versioning.

// stmtWrites reports whether a statement mutates named engine tables
// (INSERT/UPDATE/DELETE/DDL, and SELECT ... INTO, which materializes a new
// table). Such statements run under the exclusive save lock so they cannot
// race other queries or commits touching the same tables, and their results
// are scheduled for persistence; plain SELECTs run under the shared lock.
func stmtWrites(st sql.Stmt) bool {
	if sel, ok := st.(*sql.SelectStmt); ok {
		return sel.Into != ""
	}
	return true
}

// lockForStmts acquires the save lock in the mode the statements need and
// returns the matching unlock.
func (s *Store) lockForStmts(stmts ...sql.Stmt) func() {
	for _, st := range stmts {
		if stmtWrites(st) {
			s.ioMu.Lock()
			return s.ioMu.Unlock
		}
	}
	s.ioMu.RLock()
	return s.ioMu.RUnlock
}

// lockAllDatasets takes every dataset's lock (in name order, so concurrent
// callers cannot deadlock) and returns the matching unlock. It backs raw SQL
// that names tables directly: such a statement may touch any dataset's
// backing tables, which are otherwise guarded only by per-dataset locks.
// Caller holds ioMu, so the catalog is stable.
func (s *Store) lockAllDatasets(write bool) func() {
	names := core.ListCVDs(s.db)
	sort.Strings(names)
	locked := make([]*Dataset, 0, len(names))
	for _, n := range names {
		d, err := s.dataset(n)
		if err != nil {
			continue
		}
		if write {
			d.mu.Lock()
		} else {
			d.mu.RLock()
		}
		locked = append(locked, d)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if write {
				locked[i].mu.Unlock()
			} else {
				locked[i].mu.RUnlock()
			}
		}
	}
}

// Run executes one SQL statement, resolving OrpheusDB version references.
// Run is safe for concurrent use. VERSION ... OF CVD references resolve
// under the referenced datasets' read locks into in-memory relations served
// by the checkout cache, so versioned queries on dataset A run alongside
// commits on dataset B. Statements naming plain tables additionally take
// every dataset's lock (shared for SELECT, exclusive for DML, which also
// holds the save lock exclusively), since a raw name may resolve to any
// dataset's backing tables. After a write statement the checkout cache is
// flushed inside the same locked window: raw DML may have rewritten any
// dataset's backing tables out from under the versioning layer.
func (s *Store) Run(src string) (*Result, error) {
	return s.RunCtx(context.Background(), src)
}

// RunCtx is Run with trace propagation and latency observation: the parse and
// execution phases contribute "sql.parse" / "sql.execute" spans when ctx
// carries a trace, and each lands in its histogram.
func (s *Store) RunCtx(ctx context.Context, src string) (*Result, error) {
	stmt, err := s.parseTimed(ctx, src)
	if err != nil {
		return nil, err
	}
	return s.runParsed(ctx, stmt)
}

// parseTimed wraps sql.Parse with the sql.parse span and histogram.
func (s *Store) parseTimed(ctx context.Context, src string) (sql.Stmt, error) {
	_, span := obs.StartSpan(ctx, "sql.parse")
	start := time.Now()
	stmt, err := sql.Parse(src)
	s.obs.sqlParseSeconds.ObserveDuration(time.Since(start))
	span.End()
	return stmt, err
}

// runParsed executes one parsed statement with the locking its kind needs.
// Branch and merge statements dispatch to the store's branch layer (which
// takes its own locks and WAL-logs); everything else runs through the SQL
// executor under the save lock.
func (s *Store) runParsed(ctx context.Context, stmt sql.Stmt) (*Result, error) {
	if res, handled, err := s.runBranchStmt(ctx, stmt); handled {
		return res, err
	}
	ctx, span := obs.StartSpan(ctx, "sql.execute")
	start := time.Now()
	defer func() {
		s.obs.sqlExecSeconds.ObserveDuration(time.Since(start))
		span.End()
	}()
	writes := stmtWrites(stmt)
	if writes {
		if err := s.writable(); err != nil {
			return nil, err
		}
	}
	defer s.lockForStmts(stmt)()
	plain := stmtReferencesPlainTables(stmt)
	if writes || plain {
		defer s.lockAllDatasets(writes)()
	}
	res, err := sql.RunWith(s.db, stmt, &cvdSource{ctx: ctx, s: s, locked: writes || plain})
	if writes {
		// Still inside the exclusive window: invalidate before any reader
		// can observe post-DML state through a stale entry. Even a failed
		// statement may have applied partial mutations (e.g. a multi-row
		// INSERT failing midway), so flush and persist either way.
		s.cache.Flush()
		s.ScheduleSave()
	}
	return res, err
}

// RunScript executes a semicolon-separated script, returning the last result.
// A script containing branch or merge statements runs statement by statement
// (each under its own locking), since those statements acquire the store's
// locks themselves; pure SQL scripts keep the single save-lock window.
func (s *Store) RunScript(src string) (*Result, error) {
	return s.RunScriptCtx(context.Background(), src)
}

// RunScriptCtx is RunScript with trace propagation: the script-level parse
// contributes one "sql.parse" span, and each executed statement its own
// "sql.execute" span (scripts containing branch statements span per statement
// through runParsed instead).
func (s *Store) RunScriptCtx(ctx context.Context, src string) (*Result, error) {
	_, pspan := obs.StartSpan(ctx, "sql.parse")
	pstart := time.Now()
	stmts, err := sql.ParseScript(src)
	s.obs.sqlParseSeconds.ObserveDuration(time.Since(pstart))
	pspan.End()
	if err != nil {
		return nil, err
	}
	if scriptHasBranchStmt(stmts) {
		res := &Result{}
		for _, stmt := range stmts {
			if res, err = s.runParsed(ctx, stmt); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	ctx, span := obs.StartSpan(ctx, "sql.execute")
	start := time.Now()
	defer func() {
		s.obs.sqlExecSeconds.ObserveDuration(time.Since(start))
		span.End()
	}()
	defer s.lockForStmts(stmts...)()
	res := &Result{}
	wrote := false
	// Writes applied by earlier statements must persist even when a later
	// statement fails (or the failing statement itself applied partially).
	defer func() {
		if wrote {
			s.ScheduleSave()
		}
	}()
	for _, stmt := range stmts {
		w := stmtWrites(stmt)
		if w {
			if err := s.writable(); err != nil {
				return nil, err
			}
		}
		wrote = wrote || w
		plain := stmtReferencesPlainTables(stmt)
		source := &cvdSource{ctx: ctx, s: s, locked: w || plain}
		if w || plain {
			unlock := s.lockAllDatasets(w)
			res, err = sql.RunWith(s.db, stmt, source)
			if w {
				s.cache.Flush() // before unlock: see Run
			}
			unlock()
		} else {
			res, err = sql.RunWith(s.db, stmt, source)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scriptHasBranchStmt reports whether any statement is a branch/merge op.
func scriptHasBranchStmt(stmts []sql.Stmt) bool {
	for _, st := range stmts {
		switch st.(type) {
		case *sql.CreateBranchStmt, *sql.DropBranchStmt, *sql.MergeStmt:
			return true
		}
	}
	return false
}

// refString renders a statement's version-or-branch reference pair as the
// string form Dataset.Merge and friends resolve.
func refString(vid int64, branch string) string {
	if branch != "" {
		return branch
	}
	return strconv.FormatInt(vid, 10)
}

// runBranchStmt dispatches the ORPHEUSDB branch/merge statements to the
// store's branch layer. handled is false for every other statement.
func (s *Store) runBranchStmt(ctx context.Context, stmt sql.Stmt) (*Result, bool, error) {
	switch st := stmt.(type) {
	case *sql.CreateBranchStmt:
		d, err := s.Dataset(st.CVD)
		if err != nil {
			return nil, true, err
		}
		// Resolve an explicit anchor through ResolveRef so a nonsense
		// `FROM VERSION 0` is rejected rather than read as "latest".
		at := VersionID(0)
		if st.FromBranch != "" || st.From >= 0 {
			if at, err = d.ResolveRef(refString(st.From, st.FromBranch)); err != nil {
				return nil, true, err
			}
		}
		b, err := d.CreateBranch(st.Branch, at)
		if err != nil {
			return nil, true, err
		}
		return &Result{
			Cols: []string{"branch", "head"},
			Rows: []Row{{String(b.Name), Int(int64(b.Head))}},
		}, true, nil
	case *sql.DropBranchStmt:
		d, err := s.Dataset(st.CVD)
		if err != nil {
			return nil, true, err
		}
		if err := d.DeleteBranch(st.Branch); err != nil {
			return nil, true, err
		}
		return &Result{Affected: 1}, true, nil
	case *sql.MergeStmt:
		d, err := s.Dataset(st.CVD)
		if err != nil {
			return nil, true, err
		}
		policy, err := ParseMergePolicy(st.Policy)
		if err != nil {
			return nil, true, err
		}
		res, err := d.MergeCtx(ctx, refString(st.Ours, st.OursBranch), refString(st.Theirs, st.TheirsBranch), policy, "")
		if err != nil {
			return nil, true, err
		}
		return &Result{
			Cols: []string{"version", "base", "conflicts"},
			Rows: []Row{{Int(int64(res.Version)), Int(int64(res.Base)), Int(int64(len(res.Conflicts)))}},
		}, true, nil
	}
	return nil, false, nil
}

// cvdSource resolves `VERSION ... OF CVD` references for the SQL executor,
// serving materialized record sets from the store's checkout cache. locked
// marks statements for which Run already holds every dataset's lock (plain
// tables or DML); taking the per-dataset read lock again would deadlock
// against the held write lock, and is redundant under the held read lock.
type cvdSource struct {
	// ctx carries the statement's trace (if any) into the checkout layer, so
	// a versioned query's cache lookup, bitmap algebra, and record fetch
	// appear as spans nested under sql.execute. The executor's source
	// interface has no ctx parameter, so the source pins it per statement.
	ctx    context.Context
	s      *Store
	locked bool
}

// context returns the pinned statement context, tolerating zero-value sources.
func (src *cvdSource) context() context.Context {
	if src.ctx != nil {
		return src.ctx
	}
	return context.Background()
}

func (src *cvdSource) MaterializeVersionRef(ref *sql.TableRef) ([]engine.Column, []engine.Row, error) {
	d, err := src.s.dataset(ref.CVD) // caller (Run) already holds ioMu
	if err != nil {
		return nil, nil, err
	}
	if !src.locked {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if err := d.aliveLocked(); err != nil {
		return nil, nil, err
	}
	version := ref.Version
	if ref.Branch != "" {
		// A branch name in the version slot resolves to the branch head
		// under the same lock acquisition as the materialization.
		v, err := d.cvd.ResolveRef(ref.Branch)
		if err != nil {
			return nil, nil, err
		}
		version = int64(v)
	}
	switch {
	case version >= 0 && len(ref.ExtraVersions) > 0:
		// Multi-version scan: membership is bitmap algebra over the
		// versions' rlists; only the result records touch the data tables,
		// and the whole materialization is cached under the chain's
		// canonical key.
		vids := make([]vgraph.VersionID, 0, len(ref.ExtraVersions)+1)
		vids = append(vids, vgraph.VersionID(version))
		for _, v := range ref.ExtraVersions {
			vids = append(vids, vgraph.VersionID(v))
		}
		ops := make([]core.SetOp, len(ref.SetOps))
		for i, kw := range ref.SetOps {
			op, err := core.ParseSetOp(kw)
			if err != nil {
				return nil, nil, err
			}
			ops[i] = op
		}
		rows, err := d.cvd.MultiVersionCheckoutCtx(src.context(), vids, ops)
		if err != nil {
			return nil, nil, err
		}
		return append([]engine.Column(nil), d.cvd.Columns()...), rows, nil
	case version >= 0:
		rows, err := d.cvd.CheckoutCtx(src.context(), vgraph.VersionID(version))
		if err != nil {
			return nil, nil, err
		}
		return append([]engine.Column(nil), d.cvd.Columns()...), rows, nil
	default:
		// All-versions view: vid + data attributes, one row per
		// (version, record) pair — the "table with versioned records" of
		// Figure 1a, generated on the fly.
		return d.cvd.AllVersionsCheckoutCtx(src.context())
	}
}

// stmtReferencesPlainTables walks the statement and reports whether it names
// any plain (non-versioned) table — such statements take every dataset's
// lock, since a raw name may resolve to any dataset's backing tables.
func stmtReferencesPlainTables(stmt sql.Stmt) bool {
	plain := false
	var walkSelect func(sel *sql.SelectStmt) error

	var walkFrom func(f sql.FromItem) error
	walkFrom = func(f sql.FromItem) error {
		switch t := f.(type) {
		case *sql.TableRef:
			if t.CVD == "" {
				plain = true
			}
		case *sql.SubqueryRef:
			return walkSelect(t.Select)
		case *sql.JoinRef:
			if err := walkFrom(t.Left); err != nil {
				return err
			}
			if err := walkFrom(t.Right); err != nil {
				return err
			}
			return walkExpr(t.On, walkSelect)
		}
		return nil
	}

	walkSelect = func(sel *sql.SelectStmt) error {
		if sel == nil {
			return nil
		}
		for _, f := range sel.From {
			if err := walkFrom(f); err != nil {
				return err
			}
		}
		for _, item := range sel.Items {
			if err := walkExpr(item.Expr, walkSelect); err != nil {
				return err
			}
		}
		for _, e := range append([]sql.Expr{sel.Where, sel.Having}, sel.GroupBy...) {
			if err := walkExpr(e, walkSelect); err != nil {
				return err
			}
		}
		for _, o := range sel.OrderBy {
			if err := walkExpr(o.Expr, walkSelect); err != nil {
				return err
			}
		}
		return nil
	}

	switch t := stmt.(type) {
	case *sql.SelectStmt:
		_ = walkSelect(t)
		if t.Into != "" {
			plain = true // materializes into a named table
		}
	default:
		// INSERT/UPDATE/DELETE/DDL target a named table directly; no need
		// to walk further, the answer cannot change.
		plain = true
	}
	return plain
}

// walkExpr visits subqueries inside an expression tree.
func walkExpr(e sql.Expr, visit func(*sql.SelectStmt) error) error {
	switch t := e.(type) {
	case nil:
		return nil
	case *sql.BinaryExpr:
		if err := walkExpr(t.Left, visit); err != nil {
			return err
		}
		return walkExpr(t.Right, visit)
	case *sql.UnaryExpr:
		return walkExpr(t.X, visit)
	case *sql.IsNullExpr:
		return walkExpr(t.X, visit)
	case *sql.BetweenExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		if err := walkExpr(t.Lo, visit); err != nil {
			return err
		}
		return walkExpr(t.Hi, visit)
	case *sql.InExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		for _, l := range t.List {
			if err := walkExpr(l, visit); err != nil {
				return err
			}
		}
		if t.Select != nil {
			return visit(t.Select)
		}
	case *sql.ExistsExpr:
		return visit(t.Select)
	case *sql.SubqueryExpr:
		return visit(t.Select)
	case *sql.ArrayExpr:
		for _, el := range t.Elems {
			if err := walkExpr(el, visit); err != nil {
				return err
			}
		}
		if t.Select != nil {
			return visit(t.Select)
		}
	case *sql.IndexExpr:
		if err := walkExpr(t.X, visit); err != nil {
			return err
		}
		return walkExpr(t.Index, visit)
	case *sql.FuncExpr:
		for _, a := range t.Args {
			if err := walkExpr(a, visit); err != nil {
				return err
			}
		}
	case *sql.CaseExpr:
		for _, w := range t.Whens {
			if err := walkExpr(w.Cond, visit); err != nil {
				return err
			}
			if err := walkExpr(w.Result, visit); err != nil {
				return err
			}
		}
		return walkExpr(t.Else, visit)
	}
	return nil
}
