package orpheusdb

import (
	"fmt"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/wal"
)

// Durability. A Store's snapshot file alone is only as fresh as the last
// debounced save: a crash after an acknowledged Commit but before the async
// save would silently lose versions. Enabling the write-ahead log closes
// that window. Every mutation appends one typed record to an append-only,
// CRC-checksummed segment log inside its critical section, before the call
// returns; reopening the store replays the log tail over the last snapshot,
// tolerating torn tails (the log is truncated at the first bad frame, so
// recovery yields exactly the acknowledged prefix). The debounced save
// becomes a checkpoint: it snapshots the engine together with the
// applied-LSN watermark and then truncates the log segments the snapshot
// made obsolete, so the log stays short and saves stop being the only
// durability mechanism.
//
// Logged mutations: dataset init/drop, commits (including schema evolution
// and staged-table commits, whose materialized rows ride in the record),
// partition optimization/maintenance, and user registration. The staging
// area itself (CheckoutToTable, SQL writes on staged tables) remains
// checkpoint-durable only: staged tables are working copies whose loss is
// recoverable by checking out again, and logging them would bloat the log
// with data the commit record captures anyway.

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy = wal.Policy

// Fsync policies, re-exported: FsyncAlways syncs before every commit
// acknowledgment, FsyncInterval syncs on a background cadence (bounded loss
// on power failure, none on process crash), FsyncOff leaves flushing to the
// OS entirely.
const (
	FsyncAlways   = wal.PolicyAlways
	FsyncInterval = wal.PolicyInterval
	FsyncOff      = wal.PolicyOff
)

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// WALConfig configures the store's write-ahead log.
type WALConfig struct {
	// Dir is the segment directory; defaults to "<store path>.wal".
	Dir string
	// Policy is the fsync policy (default FsyncAlways).
	Policy FsyncPolicy
	// SyncInterval is the background fsync cadence under FsyncInterval
	// (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes rotates log segments past this size (default 16 MiB).
	SegmentBytes int64
}

// EnableWAL attaches a write-ahead log to the store and runs crash recovery:
// any log records the current state does not reflect (their LSN is beyond
// the loaded snapshot's watermark) are replayed, reconstructing every
// acknowledged mutation. Call it immediately after OpenStore, before the
// store is shared; it is not safe to enable concurrently with mutations.
// A store without a path (NewStore) may still enable a WAL with an explicit
// Dir, making the log the sole persistence mechanism.
func (s *Store) EnableWAL(cfg WALConfig) error {
	if s.wal != nil {
		return fmt.Errorf("orpheusdb: WAL already enabled")
	}
	if cfg.Dir == "" {
		if s.path == "" {
			return fmt.Errorf("orpheusdb: WAL needs a directory for an in-memory store")
		}
		cfg.Dir = s.path + ".wal"
	}
	l, err := wal.Open(wal.Options{
		Dir:          cfg.Dir,
		SegmentBytes: cfg.SegmentBytes,
		Policy:       cfg.Policy,
		SyncInterval: cfg.SyncInterval,
		AppendBytes:  s.obs.walAppendBytes,
		FsyncSeconds: s.obs.walFsyncSeconds,
	})
	if err != nil {
		return err
	}
	// If the snapshot is ahead of the log (the log directory was removed),
	// fresh appends must not reuse LSNs the snapshot already covers.
	base := s.db.WalLSN() // what the loaded snapshot reflects
	if err := l.EnsureNextLSN(base + 1); err != nil {
		l.Close()
		return err
	}
	replayed := 0
	err = l.Replay(base, func(lsn uint64, rec *wal.Record) error {
		if err := s.applyRecord(rec); err != nil {
			return fmt.Errorf("orpheusdb: wal replay LSN %d (%s %s): %w", lsn, rec.Type, rec.Dataset, err)
		}
		s.db.SetWalLSN(lsn)
		replayed++
		return nil
	})
	if err != nil {
		l.Close()
		return err
	}
	s.wal = l
	s.walCfg = cfg
	s.ckptLSN.Store(base) // the on-disk snapshot covers exactly the pre-replay watermark
	if replayed > 0 {
		// Replay mutated CVDs directly, bypassing the mutators that
		// invalidate the checkout cache; drop anything a pre-EnableWAL
		// read may have materialized from the pre-replay state.
		s.cache.Flush()
	}
	if replayed > 0 && s.path != "" {
		// Fold the replayed tail into a fresh snapshot soon so the next
		// recovery starts closer to the tail.
		s.ScheduleSave()
	}
	return nil
}

// WALEnabled reports whether a write-ahead log is attached.
func (s *Store) WALEnabled() bool { return s.wal != nil }

// Path returns the store's snapshot file path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// logMutation appends rec to the WAL inside the caller's critical section
// and advances the engine's applied-LSN watermark. On append failure the
// mutation is already applied in memory but must not be acknowledged: the
// error is returned to the caller, the log refuses further appends, and an
// immediate checkpoint is scheduled so snapshot-based durability takes over.
func (s *Store) logMutation(rec *wal.Record) error {
	if s.wal == nil {
		return nil
	}
	lsn, err := s.wal.Append(rec)
	if lsn != 0 {
		// Even a failed append may have put the record in the log (fsync or
		// rotation failed after the write); the watermark must cover it so
		// the next checkpoint doesn't leave recovery a record to replay
		// over state that already contains it.
		s.db.AdvanceWalLSN(lsn)
	}
	if err != nil {
		s.saveMu.Lock()
		s.walErr = err
		s.saveMu.Unlock()
		s.ScheduleSave()
		return fmt.Errorf("orpheusdb: %w", err)
	}
	return nil
}

// commitRecord builds the WAL record for a just-applied commit on d. The
// caller holds the dataset lock; rows/cols are the original inputs so replay
// takes the exact same code path, and the version's membership bitmap rides
// along so recovery can verify it rebuilt the acknowledged record set.
func (d *Dataset) commitRecord(typ wal.Type, cols []Column, rows []Row, parents []VersionID, msg string, vid VersionID) *wal.Record {
	rec := &wal.Record{
		Type:    typ,
		Dataset: d.cvd.Name(),
		Msg:     msg,
		Cols:    cols,
		Rows:    rows,
		Version: int64(vid),
	}
	rec.Parents = make([]int64, len(parents))
	for i, p := range parents {
		rec.Parents[i] = int64(p)
	}
	if info, err := d.cvd.Info(vid); err == nil {
		rec.TimeNanos = info.CommitTime.UnixNano()
	}
	if set, err := d.cvd.RlistSet(vid); err == nil {
		rec.Members = set
	}
	return rec
}

// applyRecord replays one WAL record against the store. It runs during
// EnableWAL recovery (single-threaded, before the store is shared) and from
// ApplyReplicated on a live follower, which holds the save lock and the
// affected dataset's lock; the registry/catalog mutations below take s.mu
// themselves so follower reads never observe a half-updated registry. It
// calls core directly (no re-logging, no cache invalidation — callers own
// both).
func (s *Store) applyRecord(rec *wal.Record) error {
	switch rec.Type {
	case wal.TypeInit:
		s.mu.Lock()
		defer s.mu.Unlock()
		c, err := core.Init(s.db, rec.Dataset, rec.Cols, core.InitOptions{
			Model:      core.ModelKind(rec.Model),
			PrimaryKey: rec.PrimaryKey,
		})
		if err != nil {
			return err
		}
		c.SetCache(s.cache)
		c.SetMetrics(s.obs.core)
		c.SetHeat(core.NewHeat())
		s.datasets[rec.Dataset] = &Dataset{store: s, cvd: c}
		return nil
	case wal.TypeDrop:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		if err := d.cvd.Drop(); err != nil {
			return err
		}
		d.dropped = true
		s.mu.Lock()
		delete(s.datasets, rec.Dataset)
		s.mu.Unlock()
		return nil
	case wal.TypeCommit, wal.TypeCommitSchema, wal.TypeCommitTable:
		return s.replayCommit(rec)
	case wal.TypeOptimize:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		if rec.Weighted {
			freq := make(map[VersionID]int64, len(rec.Freq))
			for k, v := range rec.Freq {
				freq[VersionID(k)] = v
			}
			_, err = d.cvd.OptimizeWeighted(rec.Gamma, freq, rec.Naive)
		} else {
			_, err = d.cvd.Optimize(rec.Gamma, rec.Naive)
		}
		return err
	case wal.TypeMaintain:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		_, err = d.cvd.MaintainPartitions(rec.Gamma, rec.Mu, rec.Naive)
		return err
	case wal.TypeUserAdd:
		s.mu.Lock()
		defer s.mu.Unlock()
		return core.CreateUser(s.db, rec.User)
	case wal.TypeBranchCreate:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		_, err = d.cvd.CreateBranchAt(rec.Branch, VersionID(rec.Version), time.Unix(0, rec.TimeNanos))
		return err
	case wal.TypeBranchDelete:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		return d.cvd.DeleteBranch(rec.Branch)
	case wal.TypeBranchAdvance:
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return err
		}
		_, err = d.cvd.AdvanceBranch(rec.Branch, VersionID(rec.Version))
		return err
	case wal.TypeMerge:
		return s.replayMerge(rec)
	case wal.TypeOptimizeMigrate:
		return s.replayMigrateBatch(rec)
	case wal.TypeCheckpoint:
		return nil
	}
	return fmt.Errorf("unknown record type %d", rec.Type)
}

// migrateBatchRecord builds the WAL record for one applied migration batch.
func migrateBatchRecord(dataset string, b core.PartitionBatch) *wal.Record {
	rec := &wal.Record{
		Type:      wal.TypeOptimizeMigrate,
		Dataset:   dataset,
		BatchKind: uint8(b.Kind),
		Anchor:    int64(b.Anchor),
		Members:   b.Members,
	}
	if len(b.Versions) > 0 {
		rec.MovedVersions = make([]int64, len(b.Versions))
		for i, v := range b.Versions {
			rec.MovedVersions[i] = int64(v)
		}
	}
	return rec
}

// recordBatch reconstructs the migration batch a WAL record carries.
func recordBatch(rec *wal.Record) core.PartitionBatch {
	b := core.PartitionBatch{
		Kind:    core.PartitionBatchKind(rec.BatchKind),
		Anchor:  VersionID(rec.Anchor),
		Members: rec.Members,
	}
	if len(rec.MovedVersions) > 0 {
		b.Versions = make([]VersionID, len(rec.MovedVersions))
		for i, v := range rec.MovedVersions {
			b.Versions[i] = VersionID(v)
		}
	}
	return b
}

// replayMigrateBatch re-applies one logged migration batch. The batch is
// deterministic from state (anchor-addressed targets, apply-time needed
// sets), so replay over the same starting state converges to the live
// layout; the membership invariant — every version's rlist covered by its
// partition — is re-verified for the versions the batch moved.
func (s *Store) replayMigrateBatch(rec *wal.Record) error {
	d, err := s.dataset(rec.Dataset)
	if err != nil {
		return err
	}
	b := recordBatch(rec)
	if _, err := d.cvd.ApplyPartitionBatch(b); err != nil {
		return err
	}
	for _, v := range b.Versions {
		if _, err := d.cvd.Checkout(v); err != nil {
			return fmt.Errorf("replay diverged: version %d not checkable after %s batch: %w",
				v, b.Kind, err)
		}
	}
	return nil
}

// replayCommit re-runs a logged commit with the recorded timestamp, then
// verifies the replay was exact: same version id and, via the logged
// membership bitmap, the same record set.
func (s *Store) replayCommit(rec *wal.Record) error {
	d, err := s.dataset(rec.Dataset)
	if err != nil {
		return err
	}
	cvd := d.cvd
	at := time.Unix(0, rec.TimeNanos)
	restore := cvd.Clock
	cvd.Clock = func() time.Time { return at }
	defer func() { cvd.Clock = restore }()

	parents := make([]VersionID, len(rec.Parents))
	for i, p := range rec.Parents {
		parents[i] = VersionID(p)
	}
	var vid VersionID
	switch rec.Type {
	case wal.TypeCommit:
		vid, err = cvd.Commit(rec.Rows, parents, rec.Msg)
	case wal.TypeCommitSchema:
		vid, err = cvd.CommitWithSchema(rec.Cols, rec.Rows, parents, rec.Msg)
	case wal.TypeCommitTable:
		// The staged table was consumed by the original commit; a stale
		// copy may survive in an older snapshot. The record carries the
		// materialized rows, so drop the leftover and commit those.
		if s.db.HasTable(rec.Table) {
			if err := s.db.DropTable(rec.Table); err != nil {
				return err
			}
			_ = core.ReleaseProvenance(s.db, rec.Table)
		}
		vid, err = cvd.CommitWithSchema(rec.Cols, rec.Rows, parents, rec.Msg)
	}
	if err != nil {
		return err
	}
	if rec.Version != 0 && int64(vid) != rec.Version {
		return fmt.Errorf("replay diverged: produced version %d, log says %d", vid, rec.Version)
	}
	if rec.Members != nil {
		set, err := cvd.RlistSet(vid)
		if err != nil {
			return err
		}
		if !set.Equal(rec.Members) {
			return fmt.Errorf("replay diverged: version %d rebuilt %d records, log says %d",
				vid, set.Cardinality(), rec.Members.Cardinality())
		}
	}
	return nil
}

// WALStatus describes the durability subsystem for operators (the
// /v1/wal/status endpoint renders it verbatim).
type WALStatus struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Policy  string `json:"policy,omitempty"`
	// AppliedLSN is the last mutation both applied and logged.
	AppliedLSN uint64 `json:"appliedLSN"`
	// CheckpointLSN is the watermark the last successful checkpoint
	// covers; log records at or below it are obsolete.
	CheckpointLSN uint64 `json:"checkpointLSN"`
	Segments      int    `json:"segments"`
	SizeBytes     int64  `json:"sizeBytes"`
	// Checkpoints and CheckpointBytes mirror the engine's cumulative
	// checkpoint counters (count and estimated snapshot bytes).
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpointBytes"`
	// AppendError reports a WAL that stopped accepting records (the store
	// keeps serving and checkpointing; restart to recover the log).
	AppendError string `json:"appendError,omitempty"`
	// SaveError reports the most recent snapshot/checkpoint failure.
	SaveError string `json:"saveError,omitempty"`
}

// WALStatus reports the durability subsystem's state. It is meaningful (and
// cheap) whether or not a WAL is attached: without one it still carries the
// last save error and checkpoint counters.
func (s *Store) WALStatus() WALStatus {
	stats := s.db.Stats()
	st := WALStatus{
		Enabled:         s.wal != nil,
		AppliedLSN:      s.db.WalLSN(),
		CheckpointLSN:   s.ckptLSN.Load(),
		Checkpoints:     stats.Checkpoints.Load(),
		CheckpointBytes: stats.CheckpointBytes.Load(),
	}
	s.saveMu.Lock()
	if s.saveErr != nil {
		st.SaveError = s.saveErr.Error()
	}
	if s.walErr != nil {
		st.AppendError = s.walErr.Error()
	}
	s.saveMu.Unlock()
	if s.wal == nil {
		return st
	}
	st.Dir = s.walCfg.Dir
	st.Policy = s.walCfg.Policy.String()
	if ls, err := s.wal.Stat(); err == nil {
		st.Segments = ls.Segments
		st.SizeBytes = ls.SizeBytes
	}
	if err := s.wal.Err(); err != nil && st.AppendError == "" {
		st.AppendError = err.Error()
	}
	return st
}

// Checkpoint persists a snapshot now and truncates the log segments it made
// obsolete — the synchronous form of what the debounced save does
// continuously. No-op for in-memory stores (their WAL is the persistence).
func (s *Store) Checkpoint() error { return s.Save() }

// SyncWAL forces an fsync of the active log segment (useful under
// FsyncInterval/FsyncOff before handing files to another process).
func (s *Store) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// CloseWAL detaches and closes the log (final fsync included). The store
// remains usable but subsequent mutations are checkpoint-durable only.
// Flush first if the log should be fully absorbed into the snapshot.
func (s *Store) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
