package orpheusdb

// Benchmarks regenerating the paper's tables and figures via testing.B.
// Each benchmark exercises the code path behind one artifact at a small
// scale; `cmd/orpheus-bench` runs the full sweeps and prints the series.
//
//	go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/experiments"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

const benchScale = 0.004

func benchDataset(b *testing.B, name string) *benchgen.Dataset {
	b.Helper()
	d, err := benchgen.Standard(name, benchScale, 42)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTable2Gen measures benchmark dataset generation (Table 2).
func BenchmarkTable2Gen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := benchgen.Standard("SCI_1M", benchScale, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = d.Stats()
	}
}

// loadedCVD builds a CVD holding the whole dataset under one model.
func loadedCVD(b *testing.B, d *benchgen.Dataset, kind core.ModelKind) *core.CVD {
	b.Helper()
	cvd, err := experiments.LoadDatasetCVD(engine.NewDB(), d, kind)
	if err != nil {
		b.Fatal(err)
	}
	return cvd
}

// BenchmarkFig3Checkout measures Figure 3c: checkout of the latest version
// under each data model.
func BenchmarkFig3Checkout(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range append(core.AllModelKinds(), core.PartitionedRlistModel) {
		b.Run(string(kind), func(b *testing.B) {
			cvd := loadedCVD(b, d, kind)
			latest := cvd.LatestVersion()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cvd.Checkout(latest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Commit measures Figure 3b: committing the latest version back
// under each data model.
func BenchmarkFig3Commit(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range core.AllModelKinds() {
		b.Run(string(kind), func(b *testing.B) {
			cvd := loadedCVD(b, d, kind)
			latest := cvd.LatestVersion()
			rows, err := cvd.Checkout(latest)
			if err != nil {
				b.Fatal(err)
			}
			parent := latest
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := cvd.Commit(rows, []vgraph.VersionID{parent}, "bench")
				if err != nil {
					b.Fatal(err)
				}
				parent = v
			}
		})
	}
}

// BenchmarkFig3Storage reports Figure 3a's storage per model as a custom
// metric (bytes).
func BenchmarkFig3Storage(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range core.AllModelKinds() {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cvd := loadedCVD(b, d, kind)
				b.ReportMetric(float64(cvd.StorageBytes()), "storage-bytes")
			}
		})
	}
}

// BenchmarkFig9Algorithms measures one partitioning run per algorithm under
// γ = 2|R| (the work behind each Figure 9 sweep point).
func BenchmarkFig9Algorithms(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	gamma := 2 * bip.NumRecords()
	b.Run("LyreSplit", func(b *testing.B) {
		tree := g.ToTree()
		for i := 0; i < b.N; i++ {
			ls := &partition.LyreSplit{Tree: tree}
			if _, err := ls.Solve(gamma); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AGGLO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ag := &partition.Agglo{B: bip, Seed: 42}
			ag.Run(gamma)
		}
	})
	b.Run("KMEANS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			km := &partition.KMeans{B: bip, Seed: 42}
			km.Run(8)
		}
	})
}

// BenchmarkFig1213Checkout measures checkout latency without partitioning
// versus under a LYRESPLIT partitioning at γ = 2|R| (Figures 12/13).
func BenchmarkFig1213Checkout(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	latest := bip.Versions()[len(bip.Versions())-1]

	b.Run("without-partitioning", func(b *testing.B) {
		ps, err := experiments.BuildPhysStore(d, partition.NewSinglePartition(bip))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ps.Checkout(latest, engine.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lyresplit-gamma2", func(b *testing.B) {
		ls := &partition.LyreSplit{Tree: g.ToTree()}
		res, err := ls.Solve(2 * bip.NumRecords())
		if err != nil {
			b.Fatal(err)
		}
		ps, err := experiments.BuildPhysStore(d, partition.FromVersionGroups(bip, res.Groups))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ps.Checkout(latest, engine.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1415Online measures the per-commit cost of online maintenance
// including the per-commit LYRESPLIT re-solve (Figures 14/15).
func BenchmarkFig1415Online(b *testing.B) {
	d := benchgen.Generate(benchgen.Config{
		Workload:      benchgen.SCI,
		TargetRecords: 10_000,
		Branches:      40,
		OpsPerCommit:  25,
		Seed:          42,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := partition.NewOnline(1.5, 1.5)
		for _, c := range d.Commits {
			if _, err := o.Commit(c.ID, c.Parents, c.Records); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig19Joins measures the three join methods on rid- and
// pk-clustered tables (Figure 19 / Appendix D.1).
func BenchmarkFig19Joins(b *testing.B) {
	const tableRows = 50_000
	const rlistLen = 5_000
	for _, clustered := range []string{"rid", "pk"} {
		db := engine.NewDB()
		tab, err := db.CreateTable("data"+clustered, []engine.Column{
			{Name: "rid", Type: engine.KindInt},
			{Name: "pk", Type: engine.KindInt},
			{Name: "val", Type: engine.KindInt},
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < tableRows; i++ {
			pk := (i*7919 + 13) % tableRows // scrambled
			if _, err := tab.Insert(engine.Row{
				engine.IntValue(int64(i)), engine.IntValue(int64(pk)), engine.IntValue(int64(i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		col := "rid"
		if clustered == "pk" {
			col = "pk"
		}
		if err := tab.Cluster(col); err != nil {
			b.Fatal(err)
		}
		if err := tab.CreateIndex("rid"); err != nil {
			b.Fatal(err)
		}
		rlist := make([]int64, rlistLen)
		for i := range rlist {
			rlist[i] = int64((i * 9973) % tableRows)
		}
		for _, m := range []engine.JoinMethod{engine.HashJoin, engine.MergeJoin, engine.IndexNestedLoopJoin} {
			b.Run(fmt.Sprintf("%s-clustered-%s", m, clustered), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := engine.JoinRids(tab, 0, rlist, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPublicCommit measures the end-to-end commit path of the public
// API (record hashing, identity matching, model insert, metadata).
func BenchmarkPublicCommit(b *testing.B) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init("bench", cols, InitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i * 3))}
	}
	parent, err := ds.Commit(rows, nil, "root")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows[i%len(rows)] = Row{Int(int64(i % len(rows))), Int(int64(i + 1_000_000))}
		v, err := ds.Commit(rows, []VersionID{parent}, "bench")
		if err != nil {
			b.Fatal(err)
		}
		parent = v
	}
}

// BenchmarkVersionedSQL measures the query translator: a SQL aggregate over
// one version of a CVD, including temp materialization.
func BenchmarkVersionedSQL(b *testing.B) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init("q", cols, InitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 2000)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i % 97))}
	}
	if _, err := ds.Commit(rows, nil, "root"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := store.Run("SELECT count(*), sum(v) FROM VERSION 1 OF CVD q WHERE v > 50")
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 1 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkMigration measures intelligent vs naive physical migration
// (Figures 14b/15b).
func BenchmarkMigration(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	// Adjacent layouts: the amortized small-µ case intelligent migration
	// targets (frequent migrations between similar partitionings).
	oldP := partition.FromVersionGroups(bip, ls.Run(0.50).Groups)
	newP := partition.FromVersionGroups(bip, ls.Run(0.55).Groups)
	b.Run("intelligent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps, err := experiments.BuildPhysStore(d, oldP)
			if err != nil {
				b.Fatal(err)
			}
			plan := partition.PlanMigration(bip, oldP, newP)
			b.StartTimer()
			if _, err := ps.ApplyMigration(newP, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps, err := experiments.BuildPhysStore(d, oldP)
			if err != nil {
				b.Fatal(err)
			}
			plan := partition.PlanNaiveMigration(newP)
			b.StartTimer()
			if _, err := ps.ApplyMigration(newP, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLyreSplitScaling shows the near-linear scaling of LYRESPLIT in
// the number of versions (the basis of its 10^3x speedup claim).
func BenchmarkLyreSplitScaling(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		d := benchgen.Generate(benchgen.Config{
			Workload:      benchgen.SCI,
			TargetRecords: int64(n) * 20,
			Branches:      n / 10,
			OpsPerCommit:  20,
			Seed:          42,
		})
		bip := d.Bipartite()
		tree := d.Graph().ToTree()
		gamma := 2 * bip.NumRecords()
		b.Run(fmt.Sprintf("versions-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ls := &partition.LyreSplit{Tree: tree}
				if _, err := ls.Solve(gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRangeEncoding is the compression ablation the paper's Section 3.2
// footnote suggests: range-encoding the rlist arrays versus storing them
// plain. The ratio depends on the workload: insert-heavy histories keep rid
// runs intact and compress well; update-heavy ones (like SCI's default 90%
// updates) punch holes in every run and barely compress.
func BenchmarkRangeEncoding(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		updateFrac float64
	}{
		{"insert-heavy", 0.05},
		{"update-heavy", 0.9},
	} {
		d := benchgen.Generate(benchgen.Config{
			Workload:      benchgen.SCI,
			TargetRecords: 40_000,
			Branches:      50,
			OpsPerCommit:  40,
			UpdateFrac:    cfg.updateFrac,
			Seed:          42,
		})
		bip := d.Bipartite()
		b.Run(cfg.name, func(b *testing.B) {
			var plain, encoded int64
			for i := 0; i < b.N; i++ {
				plain, encoded = 0, 0
				for _, v := range bip.Versions() {
					recs := bip.Records(v)
					rlist := make([]int64, len(recs))
					for j, r := range recs {
						rlist[j] = int64(r)
					}
					enc := engine.EncodeRanges(rlist)
					plain += int64(len(rlist))
					encoded += int64(len(enc))
				}
			}
			b.ReportMetric(float64(plain)/float64(encoded), "compression-ratio")
		})
	}
}

// --- rlist-vs-bitmap membership microbenchmarks ------------------------------
//
// BenchmarkRlistVsBitmap compares the two membership representations on the
// operations every versioned workload reduces to: materializing a version's
// membership (checkout), two-sided diff, and 2-way/8-way multi-version
// intersection, at 10k and 100k records. The slice arm reproduces the seed's
// []int64 implementation (sorted-merge intersects, map-based diffs); the
// bitmap arm is the internal/bitmap algebra the engine now stores.
// TestEmitBitmapBenchJSON records the same cases into BENCH_bitmap.json so
// the perf trajectory is tracked across PRs.

// membershipFixture builds 8 overlapping version rlists over ~n records:
// a dense shared core (90% of n) plus a sparse per-version tail — the shape
// OrpheusDB commits produce (dense rid ranges with per-branch additions).
// It also loads the union of the rlists into an engine table, the partition
// the checkout cell fetches from.
func membershipFixture(n int) (slices [][]int64, bitmaps []*bitmap.Bitmap, tab *engine.Table) {
	core := make([]int64, 0, n*9/10)
	for r := int64(1); r <= int64(n*9/10); r++ {
		core = append(core, r)
	}
	rng := rand.New(rand.NewSource(99))
	for v := 0; v < 8; v++ {
		rl := append([]int64(nil), core...)
		seen := make(map[int64]bool)
		for len(seen) < n/10 {
			// Sparse tail: scattered rids beyond the shared core.
			r := int64(n) + rng.Int63n(int64(n)*4)
			if !seen[r] {
				seen[r] = true
				rl = append(rl, r)
			}
		}
		sort.Slice(rl, func(i, j int) bool { return rl[i] < rl[j] })
		slices = append(slices, rl)
		bitmaps = append(bitmaps, bitmap.FromSorted(rl))
	}
	db := engine.NewDB()
	tab, err := db.CreateTable("part", []engine.Column{
		{Name: "rid", Type: engine.KindInt},
		{Name: "val", Type: engine.KindInt},
	})
	if err != nil {
		panic(err)
	}
	union := bitmap.OrAll(bitmaps...)
	for _, rid := range union.ToSlice() {
		if _, err := tab.Insert(engine.Row{engine.IntValue(rid), engine.IntValue(rid * 3)}); err != nil {
			panic(err)
		}
	}
	return slices, bitmaps, tab
}

// Seed-style slice membership operations.

func sliceIntersect(a, b []int64) []int64 {
	out := make([]int64, 0)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func sliceDiff(a, b []int64) (onlyA, onlyB []int64) {
	inB := make(map[int64]bool, len(b))
	for _, r := range b {
		inB[r] = true
	}
	inA := make(map[int64]bool, len(a))
	for _, r := range a {
		inA[r] = true
	}
	for _, r := range a {
		if !inB[r] {
			onlyA = append(onlyA, r)
		}
	}
	for _, r := range b {
		if !inA[r] {
			onlyB = append(onlyB, r)
		}
	}
	return onlyA, onlyB
}

type membershipCase struct {
	name string
	run  func(slices [][]int64, bitmaps []*bitmap.Bitmap) int
}

func membershipCases(tab *engine.Table) []membershipCase {
	return []membershipCase{
		// checkout fetches one version's rows from its partition table. The
		// slice arm is the seed's plan: materialize the rlist (defensive
		// copy, as Rlist must) and hash-join it against the scan, paying a
		// map build per checkout. The bitmap arm hands the membership set
		// straight to the probe scan (JoinRidsSet), skipping both.
		{"checkout", func(s [][]int64, bm []*bitmap.Bitmap) int {
			if s != nil {
				rows, err := engine.JoinRids(tab, 0, append([]int64(nil), s[0]...), engine.HashJoin)
				if err != nil {
					return -1
				}
				return len(rows)
			}
			rows, err := engine.JoinRidsSet(tab, 0, bm[0], engine.HashJoin)
			if err != nil {
				return -1
			}
			return len(rows)
		}},
		{"diff", func(s [][]int64, bm []*bitmap.Bitmap) int {
			if s != nil {
				a, b := sliceDiff(s[0], s[1])
				return len(a) + len(b)
			}
			return len(bitmap.AndNot(bm[0], bm[1]).ToSlice()) + len(bitmap.AndNot(bm[1], bm[0]).ToSlice())
		}},
		{"intersect2", func(s [][]int64, bm []*bitmap.Bitmap) int {
			if s != nil {
				return len(sliceIntersect(s[0], s[1]))
			}
			return len(bitmap.And(bm[0], bm[1]).ToSlice())
		}},
		{"intersect8", func(s [][]int64, bm []*bitmap.Bitmap) int {
			if s != nil {
				acc := s[0]
				for _, o := range s[1:] {
					acc = sliceIntersect(acc, o)
				}
				return len(acc)
			}
			acc := bm[0]
			for _, o := range bm[1:] {
				acc = bitmap.And(acc, o)
			}
			return len(acc.ToSlice())
		}},
	}
}

// BenchmarkRlistVsBitmap runs every (operation, scale, representation) cell.
func BenchmarkRlistVsBitmap(b *testing.B) {
	for _, scale := range []int{10_000, 100_000} {
		slices, bitmaps, tab := membershipFixture(scale)
		for _, c := range membershipCases(tab) {
			b.Run(fmt.Sprintf("%s-%dk/slice", c.name, scale/1000), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if c.run(slices, nil) < 0 {
						b.Fatal("impossible")
					}
				}
			})
			b.Run(fmt.Sprintf("%s-%dk/bitmap", c.name, scale/1000), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if c.run(nil, bitmaps) < 0 {
						b.Fatal("impossible")
					}
				}
			})
		}
	}
}

// TestEmitBitmapBenchJSON measures the BenchmarkRlistVsBitmap cells with
// testing.Benchmark and writes BENCH_bitmap.json at the repo root, recording
// the perf trajectory of the membership substrate. Heavier than a unit test,
// so it only runs when ORPHEUS_EMIT_BENCH=1 is set (the checked-in JSON is
// refreshed by running it).
func TestEmitBitmapBenchJSON(t *testing.T) {
	if os.Getenv("ORPHEUS_EMIT_BENCH") != "1" {
		t.Skip("set ORPHEUS_EMIT_BENCH=1 to refresh BENCH_bitmap.json")
	}
	type cell struct {
		Op          string  `json:"op"`
		Records     int     `json:"records"`
		SliceNsOp   int64   `json:"slice_ns_op"`
		BitmapNsOp  int64   `json:"bitmap_ns_op"`
		Speedup     float64 `json:"speedup"`
		SliceBytes  int64   `json:"slice_membership_bytes"`
		BitmapBytes int64   `json:"bitmap_membership_bytes"`
		Compression float64 `json:"compression_ratio"`
	}
	var cells []cell
	for _, scale := range []int{10_000, 100_000} {
		slices, bitmaps, tab := membershipFixture(scale)
		var sliceBytes, bmBytes int64
		for i := range slices {
			sliceBytes += int64(len(slices[i])) * 8
			bmBytes += bitmaps[i].SerializedSizeBytes()
		}
		for _, c := range membershipCases(tab) {
			c := c
			rs := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.run(slices, nil)
				}
			})
			rb := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.run(nil, bitmaps)
				}
			})
			cells = append(cells, cell{
				Op:          c.name,
				Records:     scale,
				SliceNsOp:   rs.NsPerOp(),
				BitmapNsOp:  rb.NsPerOp(),
				Speedup:     float64(rs.NsPerOp()) / float64(rb.NsPerOp()),
				SliceBytes:  sliceBytes,
				BitmapBytes: bmBytes,
				Compression: float64(sliceBytes) / float64(bmBytes),
			})
		}
	}
	data, err := json.MarshalIndent(map[string]any{
		"benchmark": "RlistVsBitmap",
		"cells":     cells,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_bitmap.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
