package orpheusdb

// Benchmarks regenerating the paper's tables and figures via testing.B.
// Each benchmark exercises the code path behind one artifact at a small
// scale; `cmd/orpheus-bench` runs the full sweeps and prints the series.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/experiments"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

const benchScale = 0.004

func benchDataset(b *testing.B, name string) *benchgen.Dataset {
	b.Helper()
	d, err := benchgen.Standard(name, benchScale, 42)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTable2Gen measures benchmark dataset generation (Table 2).
func BenchmarkTable2Gen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := benchgen.Standard("SCI_1M", benchScale, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = d.Stats()
	}
}

// loadedCVD builds a CVD holding the whole dataset under one model.
func loadedCVD(b *testing.B, d *benchgen.Dataset, kind core.ModelKind) *core.CVD {
	b.Helper()
	cvd, err := experiments.LoadDatasetCVD(engine.NewDB(), d, kind)
	if err != nil {
		b.Fatal(err)
	}
	return cvd
}

// BenchmarkFig3Checkout measures Figure 3c: checkout of the latest version
// under each data model.
func BenchmarkFig3Checkout(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range append(core.AllModelKinds(), core.PartitionedRlistModel) {
		b.Run(string(kind), func(b *testing.B) {
			cvd := loadedCVD(b, d, kind)
			latest := cvd.LatestVersion()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cvd.Checkout(latest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Commit measures Figure 3b: committing the latest version back
// under each data model.
func BenchmarkFig3Commit(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range core.AllModelKinds() {
		b.Run(string(kind), func(b *testing.B) {
			cvd := loadedCVD(b, d, kind)
			latest := cvd.LatestVersion()
			rows, err := cvd.Checkout(latest)
			if err != nil {
				b.Fatal(err)
			}
			parent := latest
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := cvd.Commit(rows, []vgraph.VersionID{parent}, "bench")
				if err != nil {
					b.Fatal(err)
				}
				parent = v
			}
		})
	}
}

// BenchmarkFig3Storage reports Figure 3a's storage per model as a custom
// metric (bytes).
func BenchmarkFig3Storage(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	for _, kind := range core.AllModelKinds() {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cvd := loadedCVD(b, d, kind)
				b.ReportMetric(float64(cvd.StorageBytes()), "storage-bytes")
			}
		})
	}
}

// BenchmarkFig9Algorithms measures one partitioning run per algorithm under
// γ = 2|R| (the work behind each Figure 9 sweep point).
func BenchmarkFig9Algorithms(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	gamma := 2 * bip.NumRecords()
	b.Run("LyreSplit", func(b *testing.B) {
		tree := g.ToTree()
		for i := 0; i < b.N; i++ {
			ls := &partition.LyreSplit{Tree: tree}
			if _, err := ls.Solve(gamma); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AGGLO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ag := &partition.Agglo{B: bip, Seed: 42}
			ag.Run(gamma)
		}
	})
	b.Run("KMEANS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			km := &partition.KMeans{B: bip, Seed: 42}
			km.Run(8)
		}
	})
}

// BenchmarkFig1213Checkout measures checkout latency without partitioning
// versus under a LYRESPLIT partitioning at γ = 2|R| (Figures 12/13).
func BenchmarkFig1213Checkout(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	latest := bip.Versions()[len(bip.Versions())-1]

	b.Run("without-partitioning", func(b *testing.B) {
		ps, err := experiments.BuildPhysStore(d, partition.NewSinglePartition(bip))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ps.Checkout(latest, engine.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lyresplit-gamma2", func(b *testing.B) {
		ls := &partition.LyreSplit{Tree: g.ToTree()}
		res, err := ls.Solve(2 * bip.NumRecords())
		if err != nil {
			b.Fatal(err)
		}
		ps, err := experiments.BuildPhysStore(d, partition.FromVersionGroups(bip, res.Groups))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ps.Checkout(latest, engine.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1415Online measures the per-commit cost of online maintenance
// including the per-commit LYRESPLIT re-solve (Figures 14/15).
func BenchmarkFig1415Online(b *testing.B) {
	d := benchgen.Generate(benchgen.Config{
		Workload:      benchgen.SCI,
		TargetRecords: 10_000,
		Branches:      40,
		OpsPerCommit:  25,
		Seed:          42,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := partition.NewOnline(1.5, 1.5)
		for _, c := range d.Commits {
			if _, err := o.Commit(c.ID, c.Parents, c.Records); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig19Joins measures the three join methods on rid- and
// pk-clustered tables (Figure 19 / Appendix D.1).
func BenchmarkFig19Joins(b *testing.B) {
	const tableRows = 50_000
	const rlistLen = 5_000
	for _, clustered := range []string{"rid", "pk"} {
		db := engine.NewDB()
		tab, err := db.CreateTable("data"+clustered, []engine.Column{
			{Name: "rid", Type: engine.KindInt},
			{Name: "pk", Type: engine.KindInt},
			{Name: "val", Type: engine.KindInt},
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < tableRows; i++ {
			pk := (i*7919 + 13) % tableRows // scrambled
			if _, err := tab.Insert(engine.Row{
				engine.IntValue(int64(i)), engine.IntValue(int64(pk)), engine.IntValue(int64(i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		col := "rid"
		if clustered == "pk" {
			col = "pk"
		}
		if err := tab.Cluster(col); err != nil {
			b.Fatal(err)
		}
		if err := tab.CreateIndex("rid"); err != nil {
			b.Fatal(err)
		}
		rlist := make([]int64, rlistLen)
		for i := range rlist {
			rlist[i] = int64((i * 9973) % tableRows)
		}
		for _, m := range []engine.JoinMethod{engine.HashJoin, engine.MergeJoin, engine.IndexNestedLoopJoin} {
			b.Run(fmt.Sprintf("%s-clustered-%s", m, clustered), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := engine.JoinRids(tab, 0, rlist, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPublicCommit measures the end-to-end commit path of the public
// API (record hashing, identity matching, model insert, metadata).
func BenchmarkPublicCommit(b *testing.B) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init("bench", cols, InitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i * 3))}
	}
	parent, err := ds.Commit(rows, nil, "root")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows[i%len(rows)] = Row{Int(int64(i % len(rows))), Int(int64(i + 1_000_000))}
		v, err := ds.Commit(rows, []VersionID{parent}, "bench")
		if err != nil {
			b.Fatal(err)
		}
		parent = v
	}
}

// BenchmarkVersionedSQL measures the query translator: a SQL aggregate over
// one version of a CVD, including temp materialization.
func BenchmarkVersionedSQL(b *testing.B) {
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init("q", cols, InitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 2000)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i % 97))}
	}
	if _, err := ds.Commit(rows, nil, "root"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := store.Run("SELECT count(*), sum(v) FROM VERSION 1 OF CVD q WHERE v > 50")
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 1 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkMigration measures intelligent vs naive physical migration
// (Figures 14b/15b).
func BenchmarkMigration(b *testing.B) {
	d := benchDataset(b, "SCI_1M")
	bip := d.Bipartite()
	g := d.Graph()
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	// Adjacent layouts: the amortized small-µ case intelligent migration
	// targets (frequent migrations between similar partitionings).
	oldP := partition.FromVersionGroups(bip, ls.Run(0.50).Groups)
	newP := partition.FromVersionGroups(bip, ls.Run(0.55).Groups)
	b.Run("intelligent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps, err := experiments.BuildPhysStore(d, oldP)
			if err != nil {
				b.Fatal(err)
			}
			plan := partition.PlanMigration(bip, oldP, newP)
			b.StartTimer()
			if _, err := ps.ApplyMigration(newP, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps, err := experiments.BuildPhysStore(d, oldP)
			if err != nil {
				b.Fatal(err)
			}
			plan := partition.PlanNaiveMigration(newP)
			b.StartTimer()
			if _, err := ps.ApplyMigration(newP, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLyreSplitScaling shows the near-linear scaling of LYRESPLIT in
// the number of versions (the basis of its 10^3x speedup claim).
func BenchmarkLyreSplitScaling(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		d := benchgen.Generate(benchgen.Config{
			Workload:      benchgen.SCI,
			TargetRecords: int64(n) * 20,
			Branches:      n / 10,
			OpsPerCommit:  20,
			Seed:          42,
		})
		bip := d.Bipartite()
		tree := d.Graph().ToTree()
		gamma := 2 * bip.NumRecords()
		b.Run(fmt.Sprintf("versions-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ls := &partition.LyreSplit{Tree: tree}
				if _, err := ls.Solve(gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRangeEncoding is the compression ablation the paper's Section 3.2
// footnote suggests: range-encoding the rlist arrays versus storing them
// plain. The ratio depends on the workload: insert-heavy histories keep rid
// runs intact and compress well; update-heavy ones (like SCI's default 90%
// updates) punch holes in every run and barely compress.
func BenchmarkRangeEncoding(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		updateFrac float64
	}{
		{"insert-heavy", 0.05},
		{"update-heavy", 0.9},
	} {
		d := benchgen.Generate(benchgen.Config{
			Workload:      benchgen.SCI,
			TargetRecords: 40_000,
			Branches:      50,
			OpsPerCommit:  40,
			UpdateFrac:    cfg.updateFrac,
			Seed:          42,
		})
		bip := d.Bipartite()
		b.Run(cfg.name, func(b *testing.B) {
			var plain, encoded int64
			for i := 0; i < b.N; i++ {
				plain, encoded = 0, 0
				for _, v := range bip.Versions() {
					recs := bip.Records(v)
					rlist := make([]int64, len(recs))
					for j, r := range recs {
						rlist[j] = int64(r)
					}
					enc := engine.EncodeRanges(rlist)
					plain += int64(len(rlist))
					encoded += int64(len(enc))
				}
			}
			b.ReportMetric(float64(plain)/float64(encoded), "compression-ratio")
		})
	}
}
