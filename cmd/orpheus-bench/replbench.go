package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/repl"
	"orpheusdb/internal/server"
)

// replbench measures read-throughput scaling across follower counts: a
// WAL-enabled primary, N followers bootstrapped over HTTP and tailing the
// shipping stream, and the read router fanning checkout requests across
// them. It prints a table and writes BENCH_repl.json.
//
// Every backend (primary included) sits behind a capacity gate: a fixed
// concurrency semaphore plus a per-request service-time floor. The gate
// models a node with bounded parallelism, so adding followers adds real
// serving capacity and the 1→2→4 scaling curve is deterministic on shared
// CI hardware instead of a function of how many idle cores the host has.
// The gate parameters are part of the report — the claim replbench makes
// is about the router's fan-out, not raw single-node speed.

type replBenchRun struct {
	Followers     int      `json:"followers"`
	Ops           int      `json:"ops"`
	Errors        int      `json:"errors"`
	ThroughputRPS float64  `json:"throughput_rps"`
	P50Nanos      int64    `json:"p50_ns"`
	P95Nanos      int64    `json:"p95_ns"`
	P99Nanos      int64    `json:"p99_ns"`
	FollowerReads []uint64 `json:"follower_reads"`
	PrimaryReads  uint64   `json:"primary_reads"`
}

type replBenchCapacity struct {
	Concurrency    int     `json:"concurrency"`
	ServiceFloorMS float64 `json:"service_floor_ms"`
}

type replBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	Rows        int               `json:"rows"`
	Versions    int               `json:"versions"`
	Clients     int               `json:"clients"`
	DurationMS  int64             `json:"duration_ms_per_run"`
	Capacity    replBenchCapacity `json:"backend_capacity"`
	Runs        []replBenchRun    `json:"runs"`
	// ThroughputIncreases is the headline assertion CI checks: every run's
	// throughput beats the previous (smaller) follower count's.
	ThroughputIncreases bool    `json:"throughput_increases_with_followers"`
	SpeedupMaxVs1       float64 `json:"speedup_4_vs_1"`
}

func replBench(args []string) error {
	fs := flag.NewFlagSet("replbench", flag.ContinueOnError)
	counts := fs.String("counts", "1,2,4", "comma-separated follower counts to sweep")
	clients := fs.Int("clients", 32, "concurrent read clients driving the router")
	duration := fs.Duration("duration", 2*time.Second, "measured window per follower count")
	rows := fs.Int("rows", 200, "rows per seeded version")
	versions := fs.Int("nversions", 8, "seeded versions (reads rotate across them)")
	slots := fs.Int("capacity", 4, "per-backend concurrency gate")
	floor := fs.Duration("floor", 2*time.Millisecond, "per-backend request service-time floor")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sweep []int
	for _, raw := range strings.Split(*counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(raw))
		if err != nil || n < 1 {
			return fmt.Errorf("replbench: bad -counts entry %q", raw)
		}
		sweep = append(sweep, n)
	}

	dir, err := os.MkdirTemp("", "replbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := orpheusdb.OpenStore(filepath.Join(dir, "primary.odb"))
	if err != nil {
		return err
	}
	if err := store.EnableWAL(orpheusdb.WALConfig{
		Dir:    filepath.Join(dir, "wal"),
		Policy: orpheusdb.FsyncOff,
	}); err != nil {
		return err
	}
	defer store.CloseWAL()

	d, err := store.Init("replbench", []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "val", Type: orpheusdb.KindString},
	}, orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		return err
	}
	var vids []orpheusdb.VersionID
	for v := 0; v < *versions; v++ {
		batch := make([]orpheusdb.Row, *rows)
		for i := range batch {
			batch[i] = orpheusdb.Row{
				orpheusdb.Int(int64(v*(*rows) + i)),
				orpheusdb.String(fmt.Sprintf("v%d-row%d", v, i)),
			}
		}
		var parents []orpheusdb.VersionID
		if latest := d.LatestVersion(); latest != 0 {
			parents = []orpheusdb.VersionID{latest}
		}
		vid, err := d.Commit(batch, parents, fmt.Sprintf("seed %d", v))
		if err != nil {
			return err
		}
		vids = append(vids, vid)
	}

	primarySrv := httptest.NewServer(capacityGate(server.New(store, nil), *slots, *floor))
	defer primarySrv.Close()
	primaryLSN := store.WALStatus().AppliedLSN

	report := replBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Rows:        *rows,
		Versions:    *versions,
		Clients:     *clients,
		DurationMS:  duration.Milliseconds(),
		Capacity: replBenchCapacity{
			Concurrency:    *slots,
			ServiceFloorMS: float64(*floor) / float64(time.Millisecond),
		},
	}

	fmt.Printf("replbench: %d versions x %d rows, %d clients, %s per run, gate %d slots / %s floor\n",
		*versions, *rows, *clients, *duration, *slots, *floor)
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n", "followers", "ops", "rps", "p50", "p95", "p99")
	for _, n := range sweep {
		run, err := replBenchRunOnce(primarySrv.URL, primaryLSN, n, *clients, *duration, *slots, *floor, vids)
		if err != nil {
			return fmt.Errorf("replbench: %d follower(s): %w", n, err)
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("%-10d %10d %12.0f %12s %12s %12s\n", n, run.Ops, run.ThroughputRPS,
			time.Duration(run.P50Nanos), time.Duration(run.P95Nanos), time.Duration(run.P99Nanos))
	}

	report.ThroughputIncreases = len(report.Runs) > 1
	for i := 1; i < len(report.Runs); i++ {
		if report.Runs[i].ThroughputRPS <= report.Runs[i-1].ThroughputRPS {
			report.ThroughputIncreases = false
		}
	}
	if len(report.Runs) > 1 && report.Runs[0].ThroughputRPS > 0 {
		report.SpeedupMaxVs1 = report.Runs[len(report.Runs)-1].ThroughputRPS / report.Runs[0].ThroughputRPS
	}
	fmt.Printf("throughput increases with followers: %v", report.ThroughputIncreases)
	if report.SpeedupMaxVs1 > 0 {
		fmt.Printf("  (max/1 speedup %.2fx)", report.SpeedupMaxVs1)
	}
	fmt.Println()

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// replBenchRunOnce stands up n followers and a router over them, drives
// checkout reads through the router for the window, and tears it all down.
func replBenchRunOnce(primaryURL string, primaryLSN uint64, n, clients int, window time.Duration, slots int, floor time.Duration, vids []orpheusdb.VersionID) (replBenchRun, error) {
	run := replBenchRun{Followers: n}

	followers := make([]*repl.Follower, 0, n)
	followerSrvs := make([]*httptest.Server, 0, n)
	var urls []string
	defer func() {
		for _, s := range followerSrvs {
			s.Close()
		}
		for _, f := range followers {
			f.Close()
		}
	}()
	for i := 0; i < n; i++ {
		f, err := repl.StartFollower(repl.FollowerConfig{
			Primary:        primaryURL,
			WaitMS:         250,
			ReconnectDelay: 50 * time.Millisecond,
		})
		if err != nil {
			return run, fmt.Errorf("start follower %d: %w", i, err)
		}
		followers = append(followers, f)
		fl := f
		srv := httptest.NewServer(capacityGate(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fl.Handler().ServeHTTP(w, r)
		}), slots, floor))
		followerSrvs = append(followerSrvs, srv)
		urls = append(urls, srv.URL)
	}
	for _, f := range followers {
		if err := waitUntil(10*time.Second, func() bool {
			return f.Store().WALStatus().AppliedLSN >= primaryLSN
		}); err != nil {
			return run, fmt.Errorf("follower catch-up: %w", err)
		}
	}

	rt, err := repl.NewRouter(repl.RouterConfig{
		Primary:        primaryURL,
		Followers:      urls,
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return run, err
	}
	defer rt.Close()
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	// The router only fans out to backends its health loop has marked up;
	// measuring before that would route everything to the primary.
	if err := waitUntil(10*time.Second, func() bool {
		return routerHealthyFollowers(rtSrv.URL) >= n
	}); err != nil {
		return run, fmt.Errorf("router health: %w", err)
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        clients * 2,
			MaxIdleConnsPerHost: clients * 2,
		},
	}
	type result struct {
		durs []time.Duration
		errs int
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				v := vids[(c+i)%len(vids)]
				url := fmt.Sprintf("%s/api/v1/datasets/replbench/checkout?versions=%d", rtSrv.URL, v)
				start := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					results[c].errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results[c].errs++
					continue
				}
				results[c].durs = append(results[c].durs, time.Since(start))
			}
		}()
	}
	wg.Wait()

	var durs []time.Duration
	for _, r := range results {
		durs = append(durs, r.durs...)
		run.Errors += r.errs
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	run.Ops = len(durs)
	run.ThroughputRPS = float64(len(durs)) / window.Seconds()
	run.P50Nanos = pct(durs, 50).Nanoseconds()
	run.P95Nanos = pct(durs, 95).Nanoseconds()
	run.P99Nanos = pct(durs, 99).Nanoseconds()
	run.FollowerReads, run.PrimaryReads = routerReadCounts(rtSrv.URL)
	return run, nil
}

// capacityGate bounds a backend to `slots` in-flight requests, each taking
// at least `floor` of service time while holding its slot. This is the
// fixed-capacity node model the scaling claim is measured against.
func capacityGate(h http.Handler, slots int, floor time.Duration) http.Handler {
	sem := make(chan struct{}, slots)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sem <- struct{}{}
		defer func() { <-sem }()
		start := time.Now()
		h.ServeHTTP(w, r)
		if spent := time.Since(start); spent < floor {
			time.Sleep(floor - spent)
		}
	})
}

type routerStatus struct {
	Followers []struct {
		Healthy  bool   `json:"healthy"`
		Requests uint64 `json:"requests"`
	} `json:"followers"`
	Primary struct {
		Requests uint64 `json:"requests"`
	} `json:"primary"`
}

func routerHealth(url string) (routerStatus, error) {
	var st routerStatus
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func routerHealthyFollowers(url string) int {
	st, err := routerHealth(url)
	if err != nil {
		return 0
	}
	n := 0
	for _, f := range st.Followers {
		if f.Healthy {
			n++
		}
	}
	return n
}

func routerReadCounts(url string) ([]uint64, uint64) {
	st, err := routerHealth(url)
	if err != nil {
		return nil, 0
	}
	reads := make([]uint64, len(st.Followers))
	for i, f := range st.Followers {
		reads[i] = f.Requests
	}
	return reads, st.Primary.Requests
}

func waitUntil(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("condition not met within %s", timeout)
}
