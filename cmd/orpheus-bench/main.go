// Command orpheus-bench regenerates the tables and figures of the OrpheusDB
// paper's evaluation at a configurable scale. Each subcommand prints the
// rows/series of one artifact; `all` runs everything.
//
// Usage:
//
//	orpheus-bench [-scale 0.01] [-seed 42] [-samples 30] <artifact>
//
// Artifacts: table1 table2 fig3 fig9 fig10 fig11 fig12 fig13 fig14 fig15
// fig19 fig20 fig21 fig22 fig23 all
//
// Three load-generator modes exist beyond the paper's artifacts: `http`
// drives a running orpheus serve instance, `durability` measures
// acknowledged-commit latency under each WAL fsync policy against the legacy
// full-snapshot rewrite, `cachebench` measures the read-heavy checkout
// path with the version-aware cache disabled versus enabled, and `partbench`
// sweeps the partitioner's δ tolerance on a ≥1M-record store, tracing the
// checkout-latency-vs-storage-amplification curve through live migrations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/experiments"
)

var (
	scale   = flag.Float64("scale", 0.01, "dataset scale relative to the paper (1.0 = full size)")
	seed    = flag.Int64("seed", 42, "generator seed")
	samples = flag.Int("samples", 30, "versions sampled per checkout-time estimate (paper: 100)")
	budget  = flag.Duration("budget", 2*time.Minute, "per-algorithm time budget (paper: 10h)")
	stream  = flag.Int("versions", 1500, "streamed commits for fig14/fig15 (paper: 10,000)")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: orpheus-bench [flags] <table1|table2|fig3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig19|fig20|fig21|fig22|fig23|all>")
		fmt.Fprintln(os.Stderr, "       orpheus-bench http [-clients 32] [-duration 5s] [-url http://host:port] [-mix commit=20,checkout=40,diff=10,query=30]")
		fmt.Fprintln(os.Stderr, "       orpheus-bench durability [-commits 200] [-rows 100] [-modes snapshot-sync,always,interval,off] [-json BENCH_wal.json]")
		fmt.Fprintln(os.Stderr, "       orpheus-bench cachebench [-rows 2000] [-nversions 20] [-iters 300] [-json BENCH_cache.json]")
		fmt.Fprintln(os.Stderr, "       orpheus-bench partbench [-versions 200] [-rows 5000] [-window 35000] [-deltas 2,1,0.5,0.1] [-json BENCH_partition.json]")
		fmt.Fprintln(os.Stderr, "       orpheus-bench replbench [-counts 1,2,4] [-clients 32] [-duration 2s] [-json BENCH_repl.json]")
		fmt.Fprintln(os.Stderr, "       orpheus-bench diskbench [-rows 2000] [-nversions 12] [-iters 60] [-page-budget 131072] [-cache-budget 262144] [-json BENCH_disk.json]")
		os.Exit(2)
	}
	if flag.Arg(0) == "http" {
		if err := httpBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: http:", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "durability" {
		if err := durabilityBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: durability:", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "cachebench" {
		if err := cacheBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: cachebench:", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "partbench" {
		if err := partBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: partbench:", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "replbench" {
		if err := replBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: replbench:", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "diskbench" {
		if err := diskBench(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "orpheus-bench: diskbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, art := range flag.Args() {
		if err := runArtifact(art); err != nil {
			fmt.Fprintf(os.Stderr, "orpheus-bench: %s: %v\n", art, err)
			os.Exit(1)
		}
	}
}

func sweepCfg() experiments.SweepConfig {
	cfg := experiments.DefaultSweepConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Samples = *samples
	cfg.Budget = *budget
	return cfg
}

var (
	sciSmall = []string{"SCI_1M", "SCI_2M", "SCI_5M", "SCI_8M"}
	sciPart  = []string{"SCI_1M", "SCI_5M", "SCI_10M"}
	curPart  = []string{"CUR_1M", "CUR_5M", "CUR_10M"}
)

func runArtifact(name string) error {
	start := time.Now()
	defer func() { fmt.Printf("-- %s done in %v\n\n", name, time.Since(start)) }()
	switch name {
	case "table1":
		return table1()
	case "table2":
		rep, _, err := experiments.Table2(append(append([]string{}, sciSmall...), "SCI_10M", "CUR_1M", "CUR_5M", "CUR_10M"), *scale, *seed)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
		return nil
	case "fig3":
		_, reps, err := experiments.Fig3(sciSmall, *scale, *seed, nil)
		if err != nil {
			return err
		}
		printAll(reps)
		return nil
	case "fig9":
		return fig9(append(append([]string{}, sciPart...), curPart...), false)
	case "fig10":
		return fig1011(sciPart)
	case "fig11":
		return fig1011(curPart)
	case "fig12":
		_, rep, err := experiments.Fig1213(sciPart, sweepCfg())
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
		return nil
	case "fig13":
		_, rep, err := experiments.Fig1213(curPart, sweepCfg())
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
		return nil
	case "fig14":
		return fig1415(1.5)
	case "fig15":
		return fig1415(2.0)
	case "fig19":
		cfg := experiments.DefaultFig19Config()
		cfg.Seed = *seed
		_, reps, err := experiments.Fig19(cfg)
		if err != nil {
			return err
		}
		printAll(reps)
		return nil
	case "fig20", "fig22":
		return fig9(sciPart, true)
	case "fig21", "fig23":
		return fig9(curPart, true)
	case "all":
		for _, a := range []string{"table1", "table2", "fig3", "fig9", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15", "fig19", "fig20", "fig21"} {
			if err := runArtifact(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown artifact %q", name)
}

func printAll(reps []*experiments.Report) {
	for _, r := range reps {
		r.Print(os.Stdout)
	}
}

func table1() error {
	fmt.Println("== Table 1: SQL translations for checkout and commit ==")
	for _, kind := range core.AllModelKinds() {
		fmt.Printf("\n[%s]\n", kind)
		fmt.Println("CHECKOUT:", core.CheckoutSQL(kind, "cvd", "t_prime", 7))
		fmt.Println("COMMIT:  ", core.CommitSQL(kind, "cvd", "t_prime", 8))
	}
	fmt.Println()
	return nil
}

func fig9(names []string, estOnly bool) error {
	cfg := sweepCfg()
	for _, name := range names {
		pts, rep, err := experiments.Fig9(name, cfg)
		if err != nil {
			return err
		}
		if estOnly {
			est, real := experiments.Fig2023(pts)
			est.Print(os.Stdout)
			real.Print(os.Stdout)
		} else {
			rep.Print(os.Stdout)
		}
	}
	return nil
}

func fig1011(names []string) error {
	cfg := sweepCfg()
	for _, name := range names {
		_, rep, err := experiments.Fig1011(name, cfg)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	}
	return nil
}

func fig1415(gamma float64) error {
	cfg := experiments.DefaultFig1415Config()
	cfg.Versions = *stream
	cfg.Seed = *seed
	_, reps, err := experiments.Fig1415(gamma, cfg)
	if err != nil {
		return err
	}
	printAll(reps)
	return nil
}
