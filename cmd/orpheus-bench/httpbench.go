package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// The `http` artifact is a load generator for the versioning service: N
// concurrent clients issue a configurable mix of commit / checkout / diff /
// SQL requests and the tool reports per-operation throughput and latency
// percentiles. With no -url it spins up an in-process server over an
// in-memory store, so `orpheus-bench http` measures the full stack
// (HTTP + JSON codecs + locking + engine) out of the box; point -url at a
// running `orpheus serve` to measure over a real socket.
func httpBench(args []string) error {
	fs := flag.NewFlagSet("http", flag.ContinueOnError)
	clients := fs.Int("clients", 32, "concurrent clients")
	duration := fs.Duration("duration", 5*time.Second, "measurement window")
	url := fs.String("url", "", "target server (default: in-process)")
	rows := fs.Int("rows", 256, "rows in the seeded base version")
	mix := fs.String("mix", "commit=20,checkout=40,diff=10,query=30", "operation weights")
	benchSeed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}

	base := *url
	if base == "" {
		store := orpheusdb.NewStore()
		ts := httptest.NewServer(server.New(store, nil))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("== HTTP bench: in-process server ==\n")
	} else {
		fmt.Printf("== HTTP bench: %s ==\n", base)
	}
	fmt.Printf("clients=%d duration=%v mix=%s rows=%d\n", *clients, *duration, *mix, *rows)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}
	if err := seedBench(client, base, *rows); err != nil {
		return err
	}

	type sample struct {
		op string
		d  time.Duration
	}
	results := make([][]sample, *clients)
	failCounts := make([]map[string]int, *clients)
	var firstErr error
	var errOnce sync.Once

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*benchSeed + int64(c)))
			var local []sample
			fails := map[string]int{}
			for i := 0; time.Now().Before(deadline); i++ {
				op := pickOp(rng, weights)
				start := time.Now()
				err := doOp(client, base, op, c, i, rng)
				el := time.Since(start)
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("client %d %s: %w", c, op, err) })
					fails[op]++
					continue
				}
				local = append(local, sample{op, el})
			}
			results[c] = local
			failCounts[c] = fails
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		fmt.Fprintf(os.Stderr, "orpheus-bench: first failure: %v\n", firstErr)
	}

	// Merge per-client samples by operation.
	byOp := map[string][]time.Duration{}
	total := 0
	for _, rs := range results {
		for _, s := range rs {
			byOp[s.op] = append(byOp[s.op], s.d)
			total++
		}
	}
	fmt.Printf("\n%-10s %10s %10s %10s %10s %10s %10s\n",
		"op", "count", "ops/s", "p50", "p90", "p99", "max")
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		ds := byOp[op]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Printf("%-10s %10d %10.0f %10v %10v %10v %10v\n",
			op, len(ds), float64(len(ds))/duration.Seconds(),
			pct(ds, 50), pct(ds, 90), pct(ds, 99), ds[len(ds)-1])
	}
	fmt.Printf("%-10s %10d %10.0f\n", "TOTAL", total, float64(total)/duration.Seconds())
	failed := map[string]int{}
	for _, fails := range failCounts {
		for op, n := range fails {
			failed[op] += n
		}
	}
	for _, op := range ops {
		if failed[op] > 0 {
			fmt.Printf("FAILED %-10s %d\n", op, failed[op])
		}
	}
	for op, n := range failed {
		if len(byOp[op]) == 0 {
			fmt.Printf("FAILED %-10s %d\n", op, n)
		}
	}
	return nil
}

func parseMix(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		if w < 0 {
			return nil, fmt.Errorf("negative mix weight %q", part)
		}
		switch name {
		case "commit", "checkout", "diff", "query":
			out[name] = w
		default:
			return nil, fmt.Errorf("unknown mix op %q", name)
		}
	}
	sum := 0
	for _, w := range out {
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return out, nil
}

func pickOp(rng *rand.Rand, weights map[string]int) string {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	n := rng.Intn(sum)
	for _, op := range []string{"commit", "checkout", "diff", "query"} {
		n -= weights[op]
		if n < 0 {
			return op
		}
	}
	return "checkout"
}

// benchDataset is the CVD the load generator drives.
const benchDataset = "httpbench"

func seedBench(client *http.Client, base string, rows int) error {
	// Re-seeding an existing dataset (external -url runs) is fine: the
	// conflict is ignored and the base version reused.
	status, _, err := request(client, "POST", base+"/api/v1/datasets", map[string]any{
		"name": benchDataset,
		"columns": []map[string]string{
			{"name": "id", "type": "integer"},
			{"name": "val", "type": "string"},
			{"name": "score", "type": "decimal"},
		},
		"primaryKey": []string{"id"},
	})
	if err != nil {
		return fmt.Errorf("seed init: %w", err)
	}
	if status == http.StatusConflict {
		return nil
	}
	if status != http.StatusCreated {
		return fmt.Errorf("seed init: status %d", status)
	}
	seed := make([][]any, rows)
	for i := range seed {
		seed[i] = []any{i, fmt.Sprintf("row-%d", i), float64(i) * 0.5}
	}
	status, _, err = request(client, "POST", base+"/api/v1/datasets/"+benchDataset+"/commit", map[string]any{
		"rows": seed, "message": "bench seed",
	})
	if err != nil || status != http.StatusCreated {
		return fmt.Errorf("seed commit: status %d err %v", status, err)
	}
	return nil
}

func doOp(client *http.Client, base, op string, c, i int, rng *rand.Rand) error {
	switch op {
	case "commit":
		status, _, err := request(client, "POST", base+"/api/v1/datasets/"+benchDataset+"/commit", map[string]any{
			"rows":    [][]any{{1_000_000 + c*100_000 + i, fmt.Sprintf("c%d-%d", c, i), rng.Float64()}},
			"parents": []int64{1},
			"message": fmt.Sprintf("bench c%d i%d", c, i),
		})
		if err != nil {
			return err
		}
		if status != http.StatusCreated {
			return fmt.Errorf("status %d", status)
		}
	case "checkout":
		status, _, err := request(client, "GET", base+"/api/v1/datasets/"+benchDataset+"/checkout?versions=1", nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d", status)
		}
	case "diff":
		status, _, err := request(client, "GET", base+"/api/v1/datasets/"+benchDataset+"/diff?a=1&b=1", nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d", status)
		}
	case "query":
		status, _, err := request(client, "POST", base+"/api/v1/query", map[string]any{
			"sql": "SELECT count(*) FROM VERSION 1 OF CVD " + benchDataset,
		})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d", status)
		}
	}
	return nil
}

func request(client *http.Client, method, url string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, nil, err
		}
		rd = &buf
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}
