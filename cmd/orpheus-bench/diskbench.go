package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/obs"
)

// diskbench measures the disk backend's hot/cold checkout split: a dataset
// committed and checkpointed into the single-file page store, deliberately
// larger than both the resident page budget and the checkout cache. Cold
// checkouts (cache off, tiny page budget) pay ranged page reads from disk on
// every request; hot checkouts (cache on, warmed) serve from the explicit
// hot tier. It prints a table and writes BENCH_disk.json.

type diskBenchOp struct {
	Mode      string  `json:"mode"` // "cold" | "hot"
	Iters     int     `json:"iters"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	MeanNs    int64   `json:"mean_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type diskBenchReport struct {
	GeneratedAt     string        `json:"generated_at"`
	Rows            int           `json:"rows_per_version"`
	Versions        int           `json:"versions"`
	Iters           int           `json:"iters"`
	DatasetBytes    int64         `json:"dataset_bytes"`
	FileBytes       int64         `json:"file_bytes"`
	PageBudgetBytes int64         `json:"page_budget_bytes"`
	CacheBudget     int64         `json:"cache_budget_bytes"`
	PageFaults      int64         `json:"page_faults"`
	PageEvictions   int64         `json:"page_evictions"`
	Ops             []diskBenchOp `json:"ops"`
	// SlowdownP50 is cold p50 / hot p50: what the hot tier buys.
	SlowdownP50 float64 `json:"cold_over_hot_p50"`
}

func diskBench(args []string) error {
	fs := flag.NewFlagSet("diskbench", flag.ContinueOnError)
	rows := fs.Int("rows", 3000, "rows per version")
	versions := fs.Int("nversions", 24, "committed versions")
	iters := fs.Int("iters", 60, "measured checkouts per mode")
	pageBudget := fs.Int64("page-budget", 128<<10, "resident page budget in bytes")
	// The defaults are sized so one hot version's record set fits the cache
	// while the whole dataset does not: the hot tier holds the working set,
	// everything else must come through backend page reads.
	cacheBudget := fs.Int64("cache-budget", 768<<10, "checkout cache budget in bytes for the hot mode")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "orpheus-diskbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.odb")

	// Build phase: commit the lineage on the disk backend with no budget
	// pressure, checkpoint it into the page file, and close.
	store, err := orpheusdb.OpenStoreWithOptions(path, orpheusdb.StoreOptions{Backend: orpheusdb.BackendDisk})
	if err != nil {
		return err
	}
	cols := []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "score", Type: orpheusdb.KindFloat},
		{Name: "tag", Type: orpheusdb.KindString},
	}
	ds, err := store.Init("big", cols, orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	base := make([]orpheusdb.Row, *rows)
	for i := range base {
		base[i] = orpheusdb.Row{
			orpheusdb.Int(int64(i)),
			orpheusdb.Float(rng.Float64()),
			orpheusdb.String(fmt.Sprintf("payload-%06d-%06d", i, rng.Intn(1<<20))),
		}
	}
	var parent []orpheusdb.VersionID
	vids := make([]orpheusdb.VersionID, 0, *versions)
	for v := 0; v < *versions; v++ {
		for j := 0; j < *rows/10; j++ {
			i := rng.Intn(*rows)
			base[i] = orpheusdb.Row{base[i][0], orpheusdb.Float(rng.Float64()), base[i][2]}
		}
		vid, err := ds.Commit(append([]orpheusdb.Row(nil), base...), parent, fmt.Sprintf("v%d", v+1))
		if err != nil {
			return err
		}
		parent = []orpheusdb.VersionID{vid}
		vids = append(vids, vid)
	}
	datasetBytes := store.DB().TotalSizeBytes()
	if err := store.Close(); err != nil {
		return err
	}

	// Measure phase: reopen under the budgets. Nothing is resident — the
	// first reads of every page are genuine disk faults.
	store, err = orpheusdb.OpenStoreWithOptions(path, orpheusdb.StoreOptions{
		Backend:         orpheusdb.BackendDisk,
		PageBudgetBytes: *pageBudget,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	ds, err = store.Dataset("big")
	if err != nil {
		return err
	}
	fileBytes := store.DB().Backend().SizeBytes()
	hotVid := vids[len(vids)-1]

	rep := &diskBenchReport{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Rows:            *rows,
		Versions:        *versions,
		Iters:           *iters,
		DatasetBytes:    datasetBytes,
		FileBytes:       fileBytes,
		PageBudgetBytes: *pageBudget,
		CacheBudget:     *cacheBudget,
	}
	fmt.Printf("dataset %d bytes on disk (%d in rows), page budget %d, cache budget %d\n",
		fileBytes, datasetBytes, *pageBudget, *cacheBudget)
	fmt.Printf("%-6s %12s %12s %12s %14s\n", "mode", "p50", "p95", "p99", "ops/sec")

	p50 := map[string]int64{}
	for _, mode := range []string{"cold", "hot"} {
		if mode == "cold" {
			// No hot tier: every checkout re-materializes, faulting its
			// pages through the backend under the tiny resident budget.
			store.SetCacheBudget(0)
		} else {
			store.SetCacheBudget(*cacheBudget)
			// Warm the hot version so the measured loop hits, not misses.
			if _, err := ds.Checkout(hotVid); err != nil {
				return err
			}
		}
		hist := obs.NewHistogram(obs.LatencyBuckets)
		start := time.Now()
		for i := 0; i < *iters; i++ {
			t0 := time.Now()
			if _, err := ds.Checkout(hotVid); err != nil {
				return fmt.Errorf("%s checkout: %w", mode, err)
			}
			hist.ObserveDuration(time.Since(t0))
		}
		elapsed := time.Since(start)
		res := diskBenchOp{
			Mode:      mode,
			Iters:     *iters,
			P50Nanos:  hist.QuantileDuration(0.50).Nanoseconds(),
			P95Nanos:  hist.QuantileDuration(0.95).Nanoseconds(),
			P99Nanos:  hist.QuantileDuration(0.99).Nanoseconds(),
			MeanNs:    int64(hist.Sum() / float64(hist.Count()) * 1e9),
			OpsPerSec: float64(*iters) / elapsed.Seconds(),
		}
		rep.Ops = append(rep.Ops, res)
		p50[mode] = res.P50Nanos
		fmt.Printf("%-6s %12v %12v %12v %14.0f\n", mode,
			time.Duration(res.P50Nanos), time.Duration(res.P95Nanos),
			time.Duration(res.P99Nanos), res.OpsPerSec)
	}
	if p50["hot"] > 0 {
		rep.SlowdownP50 = float64(p50["cold"]) / float64(p50["hot"])
	}
	st := store.DB().Stats()
	rep.PageFaults = st.PageFaults.Load()
	rep.PageEvictions = st.PageEvictions.Load()
	fmt.Printf("\ncold/hot p50 ratio %.1fx; %d page faults, %d evictions across the run\n",
		rep.SlowdownP50, rep.PageFaults, rep.PageEvictions)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
