package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/core"
)

// partbench regenerates the paper's checkout-latency-vs-storage-amplification
// curve (Figure 9's LYRESPLIT arm) against the *live* partitioned model: a
// ≥1M-record CVD is repartitioned through the batched migrator at a sweep of
// δ tolerances, and real uncached checkout latencies are measured at each
// layout.
//
// δ here is the paper's tolerance: the layout is split until the estimated
// average checkout cost is within (1+δ) of its lower bound (the mean rlist
// size — no layout can fetch fewer records than a version owns). Shrinking δ
// therefore buys checkout latency with storage amplification, which is the
// trade-off the curve plots. Internally LYRESPLIT's split knob is
// binary-searched to meet each tolerance, since the knob itself is not the
// tolerance (Algorithm 1 splits more aggressively as its parameter grows).

type partBenchPoint struct {
	Delta          float64 `json:"delta"`
	InternalDelta  float64 `json:"internal_delta"`
	Partitions     int     `json:"partitions"`
	StorageRecords int64   `json:"storage_records"`
	Amplification  float64 `json:"storage_amplification"`
	CavgRecords    float64 `json:"avg_checkout_records"`
	MigrateBatches int     `json:"migrate_batches"`
	MigrateMs      int64   `json:"migrate_ms"`
	MeanNanos      int64   `json:"mean_ns"`
	P50Nanos       int64   `json:"p50_ns"`
	P95Nanos       int64   `json:"p95_ns"`
	P99Nanos       int64   `json:"p99_ns"`
	SpeedupP50     float64 `json:"speedup_p50_vs_baseline"`
}

type partBenchReport struct {
	GeneratedAt   string           `json:"generated_at"`
	Records       int64            `json:"records"`
	Versions      int              `json:"versions"`
	RlistRecords  int64            `json:"rlist_records"`
	Samples       int              `json:"samples"`
	Baseline      partBenchPoint   `json:"baseline"`
	Points        []partBenchPoint `json:"points"`
	LatencyCurve  bool             `json:"latency_strictly_decreasing"`
	StorageCurve  bool             `json:"storage_strictly_increasing"`
	TotalRowMoves int64            `json:"total_rows_moved"`
}

func partBench(args []string) error {
	fs := flag.NewFlagSet("partbench", flag.ContinueOnError)
	versions := fs.Int("versions", 200, "committed versions in the chain")
	rows := fs.Int("rows", 5000, "fresh records per version")
	window := fs.Int("window", 35000, "records each version shares with its parent")
	samples := fs.Int("nsamples", 150, "checkouts measured per layout")
	deltas := fs.String("deltas", "4,2,1,0.5,0.1", "comma-separated δ tolerances, largest first")
	batchRows := fs.Int64("batch-rows", 65536, "max records a migration batch moves")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sweep []float64
	for _, s := range strings.Split(*deltas, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad -deltas entry %q", s)
		}
		sweep = append(sweep, d)
	}

	store := orpheusdb.NewStore()
	// The bench measures the physical fetch path; the cache would hide it.
	store.SetCacheBudget(0)
	cols := []orpheusdb.Column{
		{Name: "k", Type: orpheusdb.KindInt},
		{Name: "v", Type: orpheusdb.KindInt},
	}
	ds, err := store.Init("sweep", cols, orpheusdb.InitOptions{
		Model: orpheusdb.PartitionedRlist, PrimaryKey: []string{"k"},
	})
	if err != nil {
		return err
	}

	// A sliding-window chain: every version keeps `window` of its parent's
	// records and adds `rows` fresh ones, so rlists stay equal-sized while
	// distinct records accumulate — the shape where partition size, not
	// result size, dominates checkout cost.
	fmt.Printf("building %d-version chain (~%d records)...\n",
		*versions, int64(*versions)*int64(*rows)+int64(*window))
	t0 := time.Now()
	var recent []orpheusdb.Row
	var parents []orpheusdb.VersionID
	var vids []orpheusdb.VersionID
	next := int64(0)
	for i := 0; i < *versions; i++ {
		commit := append([]orpheusdb.Row(nil), recent...)
		fresh := *rows
		if i == 0 {
			fresh = *rows + *window // seed the window
		}
		for j := 0; j < fresh; j++ {
			commit = append(commit, orpheusdb.Row{orpheusdb.Int(next), orpheusdb.Int(next*7 + 1)})
			next++
		}
		v, err := ds.Commit(commit, parents, fmt.Sprintf("step %d", i))
		if err != nil {
			return err
		}
		parents = []orpheusdb.VersionID{v}
		vids = append(vids, v)
		if len(commit) > *window {
			recent = append([]orpheusdb.Row(nil), commit[len(commit)-*window:]...)
		} else {
			recent = commit
		}
	}
	fmt.Printf("built in %v\n", time.Since(t0))

	cvd := ds.CVD()
	// Lower bound on Cavg: the mean rlist size (a version can never fetch
	// fewer records than it owns).
	var rlistSum int64
	for _, v := range vids {
		set, err := cvd.RlistSet(v)
		if err != nil {
			return err
		}
		rlistSum += set.Cardinality()
	}
	lower := float64(rlistSum) / float64(len(vids))

	measure := func() (int64, int64, int64, int64, error) {
		// The live heap grows ~5x across the sweep as storage amplifies, so
		// on small machines GC time would bias later (smaller-δ) points.
		// Collect first, then hold the collector off for the short pass —
		// the pass allocates far less than the layouts it compares.
		prev := debug.SetGCPercent(-1)
		runtime.GC()
		defer debug.SetGCPercent(prev)
		for i := 0; i < 10; i++ { // warm the path before timing
			if _, err := ds.Checkout(vids[(i*53)%len(vids)]); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		lat := make([]time.Duration, 0, *samples)
		type sample struct {
			i   int
			vid orpheusdb.VersionID
			d   time.Duration
		}
		var tagged []sample
		for i := 0; i < *samples; i++ {
			// With the collector held off, checkout results accumulate until
			// the allocator itself stalls near the end of a pass. Collect
			// between samples — outside the timed region — to keep the heap
			// bounded without letting GC pauses land inside a measurement.
			if i%32 == 0 {
				runtime.GC()
			}
			v := vids[(i*37)%len(vids)] // co-prime stride covers the chain
			t0 := time.Now()
			if _, err := ds.Checkout(v); err != nil {
				return 0, 0, 0, 0, err
			}
			d := time.Since(t0)
			lat = append(lat, d)
			tagged = append(tagged, sample{i, v, d})
		}
		if os.Getenv("PARTBENCH_DEBUG") != "" {
			sort.Slice(tagged, func(a, b int) bool { return tagged[a].d > tagged[b].d })
			for _, s := range tagged[:10] {
				fmt.Printf("  slow: sample=%d vid=%d dur=%s\n", s.i, s.vid, s.d)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		q := func(p float64) int64 {
			i := int(p * float64(len(lat)-1))
			return lat[i].Nanoseconds()
		}
		return sum.Nanoseconds() / int64(len(lat)), q(0.50), q(0.95), q(0.99), nil
	}

	layoutPoint := func() (partBenchPoint, error) {
		st, ok := ds.PartitionStatus()
		if !ok {
			return partBenchPoint{}, fmt.Errorf("dataset lost its partitioned model")
		}
		mean, p50, p95, p99, err := measure()
		if err != nil {
			return partBenchPoint{}, err
		}
		return partBenchPoint{
			Partitions:     len(st.Partitions),
			StorageRecords: st.StorageRecords,
			Amplification:  float64(st.StorageRecords) / float64(st.TotalRecords),
			CavgRecords:    st.CheckoutCost,
			MeanNanos:      mean,
			P50Nanos:       p50,
			P95Nanos:       p95,
			P99Nanos:       p99,
		}, nil
	}

	rep := &partBenchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Versions:     len(vids),
		RlistRecords: int64(lower),
		Samples:      *samples,
	}
	if st, ok := ds.PartitionStatus(); ok {
		rep.Records = st.TotalRecords
	}

	fmt.Printf("%-10s %6s %10s %6s %12s %12s %12s %10s\n",
		"delta", "parts", "storage", "amp", "mean", "p50", "p95", "speedup")
	base, err := layoutPoint()
	if err != nil {
		return err
	}
	base.Delta = 0 // unpartitioned: no tolerance in play
	base.SpeedupP50 = 1
	rep.Baseline = base
	fmt.Printf("%-10s %6d %10d %5.2fx %12v %12v %12v %9.2fx\n",
		"baseline", base.Partitions, base.StorageRecords, base.Amplification,
		time.Duration(base.MeanNanos), time.Duration(base.P50Nanos),
		time.Duration(base.P95Nanos), 1.0)

	// solveFor binary-searches LYRESPLIT's split knob for the coarsest
	// grouping whose estimated Cavg meets the (1+δ)·lower tolerance.
	solveFor := func(delta float64) (*core.RepartitionPlan, float64, error) {
		target := (1 + delta) * lower
		lo, hi := 0.0, 1.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			plan, err := cvd.PlanRepartitionDelta(mid, *batchRows)
			if err != nil {
				return nil, 0, err
			}
			if plan.EstCheckout <= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		plan, err := cvd.PlanRepartitionDelta(hi, *batchRows)
		if err != nil {
			return nil, 0, err
		}
		return plan, hi, nil
	}

	for _, delta := range sweep {
		plan, knob, err := solveFor(delta)
		if err != nil {
			return err
		}
		t0 := time.Now()
		var moved int64
		for _, b := range plan.Batches {
			n, err := cvd.ApplyPartitionBatch(b)
			if err != nil {
				return fmt.Errorf("delta=%g: apply batch: %w", delta, err)
			}
			moved += n
		}
		migrate := time.Since(t0)
		rep.TotalRowMoves += moved

		pt, err := layoutPoint()
		if err != nil {
			return err
		}
		pt.Delta = delta
		pt.InternalDelta = knob
		pt.MigrateBatches = len(plan.Batches)
		pt.MigrateMs = migrate.Milliseconds()
		if pt.P50Nanos > 0 {
			pt.SpeedupP50 = float64(base.P50Nanos) / float64(pt.P50Nanos)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("%-10.3f %6d %10d %5.2fx %12v %12v %12v %9.2fx\n",
			delta, pt.Partitions, pt.StorageRecords, pt.Amplification,
			time.Duration(pt.MeanNanos), time.Duration(pt.P50Nanos),
			time.Duration(pt.P95Nanos), pt.SpeedupP50)
	}

	rep.LatencyCurve, rep.StorageCurve = true, true
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].MeanNanos >= rep.Points[i-1].MeanNanos {
			rep.LatencyCurve = false
		}
		if rep.Points[i].StorageRecords <= rep.Points[i-1].StorageRecords {
			rep.StorageCurve = false
		}
	}
	fmt.Printf("\nlatency strictly decreasing as δ shrinks: %v; storage strictly increasing: %v\n",
		rep.LatencyCurve, rep.StorageCurve)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
