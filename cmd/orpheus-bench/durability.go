package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/obs"
)

// durabilityBench measures acknowledged-commit latency under each durability
// mode: the legacy whole-store snapshot rewrite ("snapshot-sync", what a
// durable commit cost before the WAL existed) against WAL appends under each
// fsync policy. Output is a table plus optional JSON (BENCH_wal.json) with a
// per-window latency trajectory, showing how snapshot cost grows with store
// size while WAL appends stay flat.
func durabilityBench(args []string) error {
	fs := flag.NewFlagSet("durability", flag.ContinueOnError)
	commits := fs.Int("commits", 200, "commits per mode")
	rows := fs.Int("rows", 100, "rows per commit")
	jsonPath := fs.String("json", "", "also write results as JSON to this file")
	modes := fs.String("modes", "snapshot-sync,always,interval,off", "comma-separated modes to run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var out durabilityReport
	out.Benchmark = "Durability"
	out.Commits = *commits
	out.RowsPerCommit = *rows
	fmt.Printf("== Durability: %d commits x %d rows, commit latency by fsync mode ==\n", *commits, *rows)
	fmt.Printf("%-14s %12s %12s %12s %12s %12s\n", "mode", "p50", "p95", "p99", "mean", "total")
	for _, mode := range strings.Split(*modes, ",") {
		mode = strings.TrimSpace(mode)
		if mode == "" {
			continue
		}
		res, err := runDurabilityMode(mode, *commits, *rows)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		out.Modes = append(out.Modes, res)
		fmt.Printf("%-14s %12v %12v %12v %12v %12v\n", mode,
			time.Duration(res.P50Nanos), time.Duration(res.P95Nanos), time.Duration(res.P99Nanos),
			time.Duration(res.MeanNanos), time.Duration(res.TotalNanos))
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", *jsonPath)
	}
	return nil
}

type durabilityReport struct {
	Benchmark     string           `json:"benchmark"`
	Commits       int              `json:"commits"`
	RowsPerCommit int              `json:"rows_per_commit"`
	Modes         []durabilityMode `json:"modes"`
}

type durabilityMode struct {
	Mode       string `json:"mode"`
	P50Nanos   int64  `json:"p50_ns"`
	P95Nanos   int64  `json:"p95_ns"`
	P99Nanos   int64  `json:"p99_ns"`
	MeanNanos  int64  `json:"mean_ns"`
	TotalNanos int64  `json:"total_ns"`
	// Trajectory reports p50/p99 per quarter of the run: snapshot-sync
	// degrades as the store grows, WAL modes stay flat.
	Trajectory []trajectoryPoint `json:"trajectory"`
}

type trajectoryPoint struct {
	UptoCommit int   `json:"upto_commit"`
	P50Nanos   int64 `json:"p50_ns"`
	P99Nanos   int64 `json:"p99_ns"`
}

// runDurabilityMode times `commits` acknowledged commits under one mode.
func runDurabilityMode(mode string, commits, rowsPer int) (durabilityMode, error) {
	dir, err := os.MkdirTemp("", "orpheus-durability-*")
	if err != nil {
		return durabilityMode{}, err
	}
	defer os.RemoveAll(dir)
	store, err := orpheusdb.OpenStore(filepath.Join(dir, "bench.odb"))
	if err != nil {
		return durabilityMode{}, err
	}
	snapshotSync := mode == "snapshot-sync"
	if !snapshotSync {
		policy, err := orpheusdb.ParseFsyncPolicy(mode)
		if err != nil {
			return durabilityMode{}, err
		}
		if err := store.EnableWAL(orpheusdb.WALConfig{Policy: policy}); err != nil {
			return durabilityMode{}, err
		}
		// Long debounce: checkpoints off the measured path.
		store.SetSaveDelay(time.Hour)
	}
	cols := []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "payload", Type: orpheusdb.KindString},
	}
	ds, err := store.Init("bench", cols, orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		return durabilityMode{}, err
	}
	lat := make([]int64, 0, commits)
	// Mode-level percentiles come from the same fixed-bucket histogram the
	// service exports on /metrics; the exact per-window samples below feed
	// only the trajectory.
	hist := obs.NewHistogram(obs.LatencyBuckets)
	var parent orpheusdb.VersionID
	var total time.Duration
	for c := 0; c < commits; c++ {
		rows := make([]orpheusdb.Row, rowsPer)
		for i := range rows {
			id := int64(c*rowsPer + i)
			rows[i] = orpheusdb.Row{orpheusdb.Int(id), orpheusdb.String(fmt.Sprintf("payload-%d", id))}
		}
		var parents []orpheusdb.VersionID
		if parent != 0 {
			parents = []orpheusdb.VersionID{parent}
		}
		start := time.Now()
		v, err := ds.Commit(rows, parents, fmt.Sprintf("c%d", c))
		if err != nil {
			return durabilityMode{}, err
		}
		if snapshotSync {
			// The pre-WAL durability story: a commit is durable only once
			// the full store snapshot hits disk.
			if err := store.Save(); err != nil {
				return durabilityMode{}, err
			}
		}
		d := time.Since(start)
		lat = append(lat, d.Nanoseconds())
		hist.ObserveDuration(d)
		total += d
		parent = v
	}
	store.Flush()
	res := durabilityMode{
		Mode:       mode,
		P50Nanos:   hist.QuantileDuration(0.50).Nanoseconds(),
		P95Nanos:   hist.QuantileDuration(0.95).Nanoseconds(),
		P99Nanos:   hist.QuantileDuration(0.99).Nanoseconds(),
		MeanNanos:  total.Nanoseconds() / int64(len(lat)),
		TotalNanos: total.Nanoseconds(),
	}
	quarter := (commits + 3) / 4
	for start := 0; start < commits; start += quarter {
		end := start + quarter
		if end > commits {
			end = commits
		}
		window := lat[start:end]
		res.Trajectory = append(res.Trajectory, trajectoryPoint{
			UptoCommit: end,
			P50Nanos:   quantile(window, 0.50),
			P99Nanos:   quantile(window, 0.99),
		})
	}
	return res, nil
}

// quantile returns the q-quantile of ns (not modified).
func quantile(ns []int64, q float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
