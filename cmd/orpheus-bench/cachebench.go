package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/obs"
)

// cachebench measures the read path the checkout cache exists for: repeated
// checkouts of hot versions and repeated multi-version scans, with the cache
// disabled (budget 0, every request re-materializes) versus enabled. It
// prints a table and writes BENCH_cache.json.

type cacheBenchOp struct {
	Op        string  `json:"op"`   // "checkout" | "scan" | "sql"
	Mode      string  `json:"mode"` // "uncached" | "cached"
	Iters     int     `json:"iters"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	MeanNs    int64   `json:"mean_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type cacheBenchReport struct {
	GeneratedAt string         `json:"generated_at"`
	Rows        int            `json:"rows_per_version"`
	Versions    int            `json:"versions"`
	Iters       int            `json:"iters"`
	Ops         []cacheBenchOp `json:"ops"`
	// SpeedupP50 maps op name -> uncached p50 / cached p50.
	SpeedupP50 map[string]float64   `json:"speedup_p50"`
	CacheStats orpheusdb.CacheStats `json:"cache_stats"`
	// Heat is the benchmark dataset's access-heat table after the run — the
	// same aggregate GET /api/v1/datasets/{name}/heat serves.
	Heat orpheusdb.HeatSnapshot `json:"heat"`
	// History is the retained checkout-latency series a metrics-history
	// sampler accumulated across the run: per series, how many points the
	// query path would serve. Non-empty counts are what CI asserts on.
	History []historyEvidence `json:"history"`
}

type historyEvidence struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Tier   string  `json:"tier"`
	Points int     `json:"points"`
	Newest float64 `json:"newest"`
}

func cacheBench(args []string) error {
	fs := flag.NewFlagSet("cachebench", flag.ContinueOnError)
	rows := fs.Int("rows", 2000, "rows per version")
	versions := fs.Int("nversions", 20, "committed versions")
	iters := fs.Int("iters", 300, "measured requests per op/mode")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store := orpheusdb.NewStore()
	cols := []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "score", Type: orpheusdb.KindFloat},
		{Name: "tag", Type: orpheusdb.KindString},
	}
	ds, err := store.Init("hot", cols, orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		return err
	}
	// A lineage where each version keeps most of its parent's records and
	// churns ~10% — the shape real checkout traffic sees.
	rng := rand.New(rand.NewSource(7))
	base := make([]orpheusdb.Row, *rows)
	for i := range base {
		base[i] = orpheusdb.Row{
			orpheusdb.Int(int64(i)),
			orpheusdb.Float(rng.Float64()),
			orpheusdb.String(fmt.Sprintf("tag%d", i%17)),
		}
	}
	var parent []orpheusdb.VersionID
	for v := 0; v < *versions; v++ {
		for j := 0; j < *rows/10; j++ {
			i := rng.Intn(*rows)
			base[i] = orpheusdb.Row{base[i][0], orpheusdb.Float(rng.Float64()), base[i][2]}
		}
		vid, err := ds.Commit(append([]orpheusdb.Row(nil), base...), parent, fmt.Sprintf("v%d", v+1))
		if err != nil {
			return err
		}
		parent = []orpheusdb.VersionID{vid}
	}
	hot := ds.LatestVersion()
	mid := hot / 2
	if mid == 0 {
		mid = hot
	}

	// Retained-history sampler over the store's own registry, driven manually
	// (one Sample per op/mode batch) instead of by its goroutine, so the bench
	// stays deterministic while still exercising the exact path the service's
	// /api/v1/metrics/history serves from.
	sampler, err := obs.NewHistory(store.Metrics(), obs.HistoryOptions{
		Tiers: []obs.HistoryTier{{Interval: 10 * time.Millisecond, Retain: 10 * time.Second}},
	})
	if err != nil {
		return err
	}

	ops := []struct {
		name string
		run  func() error
	}{
		{"checkout", func() error {
			_, err := ds.Checkout(hot)
			return err
		}},
		{"scan", func() error {
			_, err := ds.MultiVersionCheckout(
				[]orpheusdb.VersionID{hot, mid}, []orpheusdb.SetOp{orpheusdb.SetIntersect})
			return err
		}},
		{"sql", func() error {
			_, err := store.Run(fmt.Sprintf("SELECT count(*) FROM VERSION %d OF CVD hot", hot))
			return err
		}},
	}

	rep := &cacheBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Rows:        *rows,
		Versions:    *versions,
		Iters:       *iters,
		SpeedupP50:  map[string]float64{},
	}
	fmt.Printf("%-10s %-9s %12s %12s %12s %14s\n", "op", "mode", "p50", "p95", "p99", "ops/sec")
	p50 := map[string]map[string]int64{}
	for _, mode := range []string{"uncached", "cached"} {
		if mode == "uncached" {
			store.SetCacheBudget(0)
		} else {
			store.SetCacheBudget(orpheusdb.DefaultCacheBudget)
		}
		for _, op := range ops {
			// Warm once so the cached mode measures hits, not the miss.
			if err := op.run(); err != nil {
				return fmt.Errorf("%s warmup: %w", op.name, err)
			}
			// Latencies land in the same fixed-bucket histogram the service
			// exports on /metrics, so bench percentiles and production
			// percentiles come from one implementation.
			hist := obs.NewHistogram(obs.LatencyBuckets)
			start := time.Now()
			for i := 0; i < *iters; i++ {
				t0 := time.Now()
				if err := op.run(); err != nil {
					return fmt.Errorf("%s: %w", op.name, err)
				}
				hist.ObserveDuration(time.Since(t0))
			}
			elapsed := time.Since(start)
			res := cacheBenchOp{
				Op:        op.name,
				Mode:      mode,
				Iters:     *iters,
				P50Nanos:  hist.QuantileDuration(0.50).Nanoseconds(),
				P95Nanos:  hist.QuantileDuration(0.95).Nanoseconds(),
				P99Nanos:  hist.QuantileDuration(0.99).Nanoseconds(),
				MeanNs:    int64(hist.Sum() / float64(hist.Count()) * 1e9),
				OpsPerSec: float64(*iters) / elapsed.Seconds(),
			}
			rep.Ops = append(rep.Ops, res)
			if p50[op.name] == nil {
				p50[op.name] = map[string]int64{}
			}
			p50[op.name][mode] = res.P50Nanos
			fmt.Printf("%-10s %-9s %12v %12v %12v %14.0f\n", op.name, mode,
				time.Duration(res.P50Nanos), time.Duration(res.P95Nanos),
				time.Duration(res.P99Nanos), res.OpsPerSec)
			sampler.Sample(time.Now())
		}
	}
	for name, m := range p50 {
		if m["cached"] > 0 {
			rep.SpeedupP50[name] = float64(m["uncached"]) / float64(m["cached"])
		}
	}
	rep.CacheStats = store.CacheStats()
	if rep.Heat, err = ds.Heat(5); err != nil {
		return err
	}
	for _, s := range sampler.Query("orpheus_checkout_seconds", time.Time{}) {
		ev := historyEvidence{Name: s.Name, Labels: s.Labels, Tier: s.Tier, Points: len(s.Points)}
		if n := len(s.Points); n > 0 {
			ev.Newest = s.Points[n-1].V
		}
		rep.History = append(rep.History, ev)
	}
	fmt.Printf("\nhot-version p50 speedup: checkout %.1fx, scan %.1fx, sql %.1fx (hits=%d misses=%d)\n",
		rep.SpeedupP50["checkout"], rep.SpeedupP50["scan"], rep.SpeedupP50["sql"],
		rep.CacheStats.Hits, rep.CacheStats.Misses)
	fmt.Printf("heat: %d checkouts tracked over %d versions (hit ratio %.2f); history retains %d checkout series\n",
		rep.Heat.Checkouts, rep.Heat.TrackedVersions, rep.Heat.CacheHitRatio, len(rep.History))

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
