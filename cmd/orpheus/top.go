package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// cmdTop is the live workload view (`orpheus top -addr http://host:7077`): a
// refreshing terminal dashboard over a running serve instance, built entirely
// from the telemetry endpoints — /healthz, /api/v1/datasets/{name}/heat, and
// /api/v1/metrics/history. Per dataset it shows the sliding-window op rate,
// total checkouts, cache hit ratio, the hottest versions, and the optimizer's
// drift verdict; the header carries service health, WAL checkpoint lag, and
// checkout/fsync latency percentiles from the retained history. When stdout
// is not a terminal (or with -once) it prints a single plain-text table and
// exits, so scripts and CI can scrape it.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:7077", "base URL of a running orpheus serve")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print one snapshot and exit")
	topK := fs.Int("top", 3, "hot versions shown per dataset")
	since := fs.Duration("since", 15*time.Minute, "history window for latency percentiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("top: -interval must be positive")
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &topClient{base: base, http: &http.Client{Timeout: 5 * time.Second}}

	tty := isTerminal(os.Stdout)
	if *once || !tty {
		snap, err := c.gather(*topK, *since)
		if err != nil {
			return err
		}
		renderTop(os.Stdout, snap)
		return nil
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		snap, err := c.gather(*topK, *since)
		// Clear screen + home; a fetch error renders in place of the table so
		// a bounced server shows up instead of a frozen last frame.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("orpheus top: %v (retrying every %s)\n", err, *interval)
		} else {
			renderTop(os.Stdout, snap)
			fmt.Printf("\nrefresh %s — ctrl-c to quit\n", *interval)
		}
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
	}
}

// isTerminal reports whether f is a character device (a TTY) — the switch
// between the refreshing dashboard and the plain scrapeable table.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

type topClient struct {
	base string
	http *http.Client
}

func (c *topClient) getJSON(path string, dst any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, dst)
}

// The decode targets mirror just the fields top renders; unknown fields from
// newer servers are ignored by design.

type topHealth struct {
	Status string `json:"status"`
	WAL    struct {
		Enabled       bool   `json:"enabled"`
		Policy        string `json:"policy"`
		AppliedLSN    uint64 `json:"appliedLSN"`
		CheckpointLSN uint64 `json:"checkpointLSN"`
		AppendError   string `json:"appendError"`
	} `json:"wal"`
	Optimizer *struct {
		Running    bool   `json:"running"`
		Migrations int64  `json:"migrations"`
		LastRun    string `json:"last_run"`
		LastError  string `json:"last_error"`
	} `json:"optimizer"`
}

type topHeat struct {
	Checkouts     int64   `json:"checkouts"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Commits       int64   `json:"commits"`
	Merges        int64   `json:"merges"`
	OpsPerSecond  float64 `json:"ops_per_second"`
	TopVersions   []struct {
		Version   int64 `json:"version"`
		Checkouts int64 `json:"checkouts"`
	} `json:"top_versions"`
}

type topOptimizer struct {
	Running  bool    `json:"running"`
	Cavg     float64 `json:"avg_checkout_records"`
	BestCavg float64 `json:"best_avg_checkout_records"`
	Drifted  bool    `json:"drifted"`
	Weighted bool    `json:"access_weighted"`
}

type topHistory struct {
	Series []struct {
		Name   string `json:"name"`
		Points []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"points"`
	} `json:"series"`
}

type topRow struct {
	name string
	heat topHeat
	opt  *topOptimizer
}

type topSnapshot struct {
	at         time.Time
	health     topHealth
	healthErr  error
	rows       []topRow
	checkP50   float64 // seconds, -1 when unknown
	checkP95   float64
	fsyncP95   float64
	historyOK  bool
	historyErr string
}

func (c *topClient) gather(topK int, since time.Duration) (*topSnapshot, error) {
	snap := &topSnapshot{at: time.Now(), checkP50: -1, checkP95: -1, fsyncP95: -1}

	var list struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if err := c.getJSON("/api/v1/datasets", &list); err != nil {
		return nil, err
	}
	snap.healthErr = c.getJSON("/healthz", &snap.health)

	for _, d := range list.Datasets {
		row := topRow{name: d.Name}
		var hr struct {
			Heat topHeat `json:"heat"`
		}
		if err := c.getJSON("/api/v1/datasets/"+d.Name+"/heat?top="+fmt.Sprint(topK), &hr); err == nil {
			row.heat = hr.Heat
		}
		var pr struct {
			Optimizer topOptimizer `json:"optimizer"`
		}
		// Non-partitioned datasets 400 here; the drift column just stays "-".
		if err := c.getJSON("/api/v1/datasets/"+d.Name+"/partitioning", &pr); err == nil {
			row.opt = &pr.Optimizer
		}
		snap.rows = append(snap.rows, row)
	}
	sort.Slice(snap.rows, func(i, j int) bool {
		if snap.rows[i].heat.OpsPerSecond != snap.rows[j].heat.OpsPerSecond {
			return snap.rows[i].heat.OpsPerSecond > snap.rows[j].heat.OpsPerSecond
		}
		return snap.rows[i].name < snap.rows[j].name
	})

	var hist topHistory
	q := fmt.Sprintf("/api/v1/metrics/history?since=%s", since)
	if err := c.getJSON(q, &hist); err != nil {
		snap.historyErr = err.Error()
	} else {
		snap.historyOK = true
		snap.checkP50 = newestMax(hist, "orpheus_checkout_seconds_p50")
		snap.checkP95 = newestMax(hist, "orpheus_checkout_seconds_p95")
		snap.fsyncP95 = newestMax(hist, "orpheus_wal_fsync_seconds_p95")
	}
	return snap, nil
}

// newestMax returns the largest newest-point value across the series with the
// given digest name (a labeled histogram contributes one child per label set;
// the max is the conservative summary), or -1 when none retain points.
func newestMax(h topHistory, name string) float64 {
	v := -1.0
	for _, s := range h.Series {
		if s.Name != name || len(s.Points) == 0 {
			continue
		}
		if p := s.Points[len(s.Points)-1].V; p > v {
			v = p
		}
	}
	return v
}

func fmtLatency(sec float64) string {
	if sec < 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func renderTop(w io.Writer, s *topSnapshot) {
	fmt.Fprintf(w, "orpheus top — %s\n", s.at.Format("15:04:05"))
	if s.healthErr != nil {
		fmt.Fprintf(w, "health: unavailable (%v)\n", s.healthErr)
	} else {
		line := "health: " + s.health.Status
		if s.health.WAL.Enabled {
			line += fmt.Sprintf("  wal: %s lag=%d", s.health.WAL.Policy,
				s.health.WAL.AppliedLSN-s.health.WAL.CheckpointLSN)
			if s.health.WAL.AppendError != "" {
				line += " APPEND-ERROR"
			}
		} else {
			line += "  wal: off"
		}
		if o := s.health.Optimizer; o != nil && o.Running {
			line += fmt.Sprintf("  optimizer: on migrations=%d", o.Migrations)
			if o.LastError != "" {
				line += " ERROR=" + o.LastError
			}
		} else {
			line += "  optimizer: off"
		}
		fmt.Fprintln(w, line)
	}
	if s.historyOK {
		fmt.Fprintf(w, "latency: checkout p50=%s p95=%s  wal fsync p95=%s\n",
			fmtLatency(s.checkP50), fmtLatency(s.checkP95), fmtLatency(s.fsyncP95))
	} else {
		fmt.Fprintf(w, "latency: history unavailable (%s)\n", s.historyErr)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %8s %10s %8s %6s %6s %-9s %s\n",
		"DATASET", "OPS/S", "CHECKOUTS", "COMMITS", "MERGES", "HIT%", "DRIFT", "HOT VERSIONS")
	for _, r := range s.rows {
		drift := "-"
		if o := r.opt; o != nil && o.Running {
			switch {
			case o.Drifted && o.Weighted:
				drift = "DRIFT*w"
			case o.Drifted:
				drift = "DRIFT"
			default:
				drift = "ok"
			}
			if o.BestCavg > 0 {
				drift += fmt.Sprintf(" %.2f", o.Cavg/o.BestCavg)
			}
		}
		hot := make([]string, 0, len(r.heat.TopVersions))
		for _, v := range r.heat.TopVersions {
			hot = append(hot, fmt.Sprintf("v%d:%d", v.Version, v.Checkouts))
		}
		fmt.Fprintf(w, "%-20s %8.2f %10d %8d %6d %5.1f%% %-9s %s\n",
			r.name, r.heat.OpsPerSecond, r.heat.Checkouts, r.heat.Commits,
			r.heat.Merges, 100*r.heat.CacheHitRatio, drift, strings.Join(hot, " "))
	}
	if len(s.rows) == 0 {
		fmt.Fprintln(w, "(no datasets)")
	}
}
