package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the observed output")

// captureOutput runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureOutput(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

var timestampRE = regexp.MustCompile(`\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}`)

// normalize strips run-dependent details (timestamps, temp paths) from CLI
// output.
func normalize(out, csvPath string) string {
	out = strings.ReplaceAll(out, csvPath, "<CSV>")
	return timestampRE.ReplaceAllString(out, "<TIME>")
}

// TestCLIGoldenBranchWorkflow drives the full branch workflow end to end —
// init → three commits → branch → diverge → merge (including a conflicted
// merge resolved by policy) → checkout — and compares the normalized CLI
// output against testdata/branch_workflow.golden. Regenerate with
// `go test ./cmd/orpheus -run TestCLIGolden -update`.
func TestCLIGoldenBranchWorkflow(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "data.csv",
		"id:integer,val:string\n1,alpha\n2,beta\n3,gamma\n")

	steps := [][]string{
		// init → v1, then two linear commits → v2, v3.
		{"init", "-n", "prot", "-f", csv, "-p", "id"},
		{"checkout", "prot", "-v", "1", "-t", "w"},
		{"run", "-q", "UPDATE w SET val = 'alpha2' WHERE id = 1"},
		{"commit", "-t", "w", "-m", "rescore alpha"},
		{"checkout", "prot", "-v", "2", "-t", "w"},
		{"run", "-q", "INSERT INTO w VALUES (4, 'delta')"},
		{"commit", "-t", "w", "-m", "add delta"},
		// Branch dev off the root and diverge: modify beta there.
		{"branch", "prot", "-c", "dev", "-v", "1"},
		{"checkout", "prot", "-v", "dev", "-t", "w"},
		{"run", "-q", "UPDATE w SET val = 'beta-dev' WHERE id = 2"},
		{"commit", "-t", "w", "-m", "dev beta"},
		// main tracks the tip; dev's commit (v4) is merged into it.
		{"branch", "prot", "-c", "main", "-v", "3"},
		{"branch", "prot"},
		{"merge", "prot", "-from", "4", "-into", "main", "-m", "land dev"},
		{"branch", "prot"},
		{"log", "prot"},
		// A conflicting pair: both rescore id=1 from v1, resolved by policy.
		{"checkout", "prot", "-v", "1", "-t", "w"},
		{"run", "-q", "UPDATE w SET val = 'left' WHERE id = 1"},
		{"commit", "-t", "w", "-m", "left"},
		{"checkout", "prot", "-v", "1", "-t", "w"},
		{"run", "-q", "UPDATE w SET val = 'right' WHERE id = 1"},
		{"commit", "-t", "w", "-m", "right"},
		{"merge", "prot", "-from", "7", "-into", "6", "-policy", "theirs"},
		// Checkout the merge results through SQL (branch name resolution)
		// and diff the merged head against one side.
		{"run", "-q", "SELECT id, val FROM VERSION main OF CVD prot ORDER BY id"},
		{"diff", "prot", "-v", "3,5"},
	}

	var b strings.Builder
	for _, step := range steps {
		b.WriteString("$ orpheus " + strings.Join(step, " ") + "\n")
		out := captureOutput(t, func() error { return cli(t, dir, step...) })
		b.WriteString(out)
	}
	got := normalize(b.String(), csv)

	golden := filepath.Join("testdata", "branch_workflow.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("CLI output deviates from %s.\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
