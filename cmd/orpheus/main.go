// Command orpheus is the OrpheusDB command-line client (Section 2.2): git-
// style version control commands plus SQL, over a store persisted as a single
// file.
//
// Usage:
//
//	orpheus -d store.odb <command> [args]
//
// Commands:
//
//	init -n <cvd> -f <file.csv> [-p pk1,pk2] [-m model]   create a CVD from a CSV file
//	checkout <cvd> -v <vid>[,vid...] (-t <table> | -f <file.csv>)
//	commit (-t <table> | -f <file.csv> -n <cvd>) -m <message>
//	diff <cvd> -v <v1>,<v2>
//	log <cvd>                                             version graph with metadata
//	branch <cvd> [-c <name> [-v <ref>] | -d <name>]       list/create/delete branches
//	merge <cvd> -from <ref> -into <ref> [-policy fail|ours|theirs] [-m msg]
//	                                                      three-way merge (refs are version ids or branch names)
//	ls                                                    list CVDs
//	drop <cvd>
//	optimize <cvd> [-gamma 2.0] [-naive]                  run the partition optimizer
//	run [-q <sql> | -s <script.sql>]                      execute SQL (VERSION ... OF CVD supported)
//	create_user <name> | whoami | config -u <user>
//	explain <cvd> -v <vid>                                Table 1 SQL translations
//	serve [-addr :7077] [-quiet] [-fsync always|interval|off]
//	                                                      run the HTTP/JSON versioning service
//	serve -follow <primary-url> [-addr :7078] [-wal-dir <dir>]
//	                                                      run a read-only follower replica of a served primary
//	route -primary <url> -followers <url,url> [-addr :7079]
//	                                                      fan reads across followers, proxy writes to the primary
//	top [-addr http://host:7077] [-interval 2s] [-once]   live workload dashboard over a running serve
//
// The global -wal <dir> flag write-ahead-logs every mutation for crash
// recovery; when <store>.wal already exists it is attached automatically so
// CLI commands stay consistent with a WAL-enabled service. `serve` manages
// its own WAL via -wal/-wal-dir/-fsync flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orpheus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("orpheus", flag.ContinueOnError)
	dbPath := global.String("d", "orpheus.odb", "store file")
	user := global.String("u", "", "act as this user")
	walDir := global.String("wal", "", "write-ahead log directory (default: <store>.wal when it exists)")
	backend := global.String("backend", "", "storage engine: memory|disk (default: match the existing file; new stores use memory)")
	pageBudget := global.Int64("page-budget", 0, "disk backend resident working-set cap in bytes (0 = default)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command; see -h")
	}
	if rest[0] == "top" {
		// Pure network client: runs against a served store and must not
		// open (or create, or save) a local store file of its own.
		return cmdTop(rest[1:])
	}
	if rest[0] == "route" {
		// Pure network proxy: no local store either.
		return cmdRoute(rest[1:])
	}
	if rest[0] == "serve" && hasFollowFlag(rest[1:]) {
		// A follower manages its own replicated store (bootstrapped from the
		// primary's snapshot); opening — and on exit saving — a local store
		// file here would clobber the path with an empty database.
		return cmdServeFollower(rest[1:])
	}
	// `serve -backend=...` selects the engine too, but the store opens
	// before serve parses its flags — peek the value out of the raw args.
	if rest[0] == "serve" {
		if v, ok := peekFlagValue(rest[1:], "backend"); ok && *backend == "" {
			*backend = v
		}
		if v, ok := peekFlagValue(rest[1:], "page-budget"); ok && *pageBudget == 0 {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("serve: bad -page-budget %q: %w", v, err)
			}
			*pageBudget = n
		}
	}
	store, err := orpheusdb.OpenStoreWithOptions(*dbPath, orpheusdb.StoreOptions{
		Backend:         orpheusdb.BackendKind(*backend),
		PageBudgetBytes: *pageBudget,
	})
	if err != nil {
		return err
	}
	// Attach the WAL when asked for — or when the store already has one, so
	// CLI mutations stay consistent with a concurrently-served log (saving a
	// snapshot without replaying the log tail would double-apply it later).
	dir := *walDir
	if dir == "" {
		if fi, err := os.Stat(*dbPath + ".wal"); err == nil && fi.IsDir() {
			dir = *dbPath + ".wal"
		}
	}
	cmd, cmdArgs := rest[0], rest[1:]
	if dir != "" {
		if cmd == "serve" {
			// serve manages its own WAL (policy flags, status banner); the
			// global flag just becomes its directory default — an explicit
			// -wal-dir later in the args still wins.
			cmdArgs = append([]string{"-wal-dir", dir}, cmdArgs...)
		} else if err := store.EnableWAL(orpheusdb.WALConfig{Dir: dir, Policy: orpheusdb.FsyncAlways}); err != nil {
			return err
		}
	}
	if *user != "" {
		if err := store.SetUser(*user); err != nil {
			return err
		}
	}
	if err := dispatch(store, cmd, cmdArgs); err != nil {
		return err
	}
	return store.Close()
}

// peekFlagValue scans raw (unparsed) args for -name=v / -name v and returns
// the value. Boolean-style occurrences without a value report ("", false).
func peekFlagValue(args []string, name string) (string, bool) {
	for i, a := range args {
		a = strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		if a == name && i+1 < len(args) {
			return args[i+1], true
		}
		if strings.HasPrefix(a, name+"=") {
			return a[len(name)+1:], true
		}
	}
	return "", false
}

func dispatch(store *orpheusdb.Store, cmd string, args []string) error {
	switch cmd {
	case "init":
		return cmdInit(store, args)
	case "checkout":
		return cmdCheckout(store, args)
	case "commit":
		return cmdCommit(store, args)
	case "diff":
		return cmdDiff(store, args)
	case "log":
		return cmdLog(store, args)
	case "branch":
		return cmdBranch(store, args)
	case "merge":
		return cmdMerge(store, args)
	case "ls":
		for _, name := range store.List() {
			fmt.Println(name)
		}
		return nil
	case "drop":
		if len(args) != 1 {
			return fmt.Errorf("usage: drop <cvd>")
		}
		return store.Drop(args[0])
	case "optimize":
		return cmdOptimize(store, args)
	case "run":
		return cmdRun(store, args)
	case "create_user":
		if len(args) != 1 {
			return fmt.Errorf("usage: create_user <name>")
		}
		if err := store.CreateUser(args[0]); err != nil {
			return err
		}
		fmt.Println("now acting as", args[0])
		return nil
	case "whoami":
		fmt.Println(store.WhoAmI())
		return nil
	case "config":
		fs := flag.NewFlagSet("config", flag.ContinueOnError)
		u := fs.String("u", "", "user name")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *u != "" {
			return store.SetUser(*u)
		}
		return nil
	case "explain":
		return cmdExplain(store, args)
	case "serve":
		return cmdServe(store, args)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// splitLeading pulls leading non-flag arguments off args so commands can be
// written as `checkout <cvd> -v 1 -t work` (the flag package stops at the
// first positional otherwise).
func splitLeading(args []string) (pos, flags []string) {
	i := 0
	for i < len(args) && !strings.HasPrefix(args[i], "-") {
		i++
	}
	return args[:i], args[i:]
}

// resolveRefs parses a comma-separated list of version references — ids or
// branch names — against a dataset.
func resolveRefs(d *orpheusdb.Dataset, s string) ([]orpheusdb.VersionID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -v version list")
	}
	var out []orpheusdb.VersionID
	for _, part := range strings.Split(s, ",") {
		v, err := d.ResolveRef(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseVids(s string) ([]orpheusdb.VersionID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -v version list")
	}
	var out []orpheusdb.VersionID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad version id %q", part)
		}
		out = append(out, orpheusdb.VersionID(n))
	}
	return out, nil
}

func cmdInit(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	name := fs.String("n", "", "CVD name")
	file := fs.String("f", "", "source csv file")
	pk := fs.String("p", "", "primary key columns, comma separated")
	model := fs.String("m", string(orpheusdb.SplitByRlist), "data model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *file == "" {
		return fmt.Errorf("usage: init -n <cvd> -f <file.csv> [-p pk] [-m model]")
	}
	opts := orpheusdb.InitOptions{Model: orpheusdb.ModelKind(*model)}
	if *pk != "" {
		opts.PrimaryKey = strings.Split(*pk, ",")
	}
	_, v, err := store.InitFromCSV(*name, *file, opts)
	if err != nil {
		return err
	}
	fmt.Printf("initialized CVD %s with version %d\n", *name, v)
	return nil
}

func cmdCheckout(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("checkout", flag.ContinueOnError)
	vlist := fs.String("v", "", "version id(s), comma separated")
	table := fs.String("t", "", "materialize as table")
	file := fs.String("f", "", "materialize as csv file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: checkout <cvd> -v <vid> (-t <table> | -f <file>)")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	vids, err := resolveRefs(d, *vlist)
	if err != nil {
		return err
	}
	switch {
	case *table != "":
		if err := d.CheckoutToTable(*table, vids...); err != nil {
			return err
		}
		fmt.Printf("checked out version(s) %v into table %s\n", vids, *table)
	case *file != "":
		if err := d.CheckoutToCSV(*file, vids...); err != nil {
			return err
		}
		fmt.Printf("checked out version(s) %v into %s\n", vids, *file)
	default:
		return fmt.Errorf("need -t <table> or -f <file>")
	}
	return nil
}

func cmdCommit(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("commit", flag.ContinueOnError)
	table := fs.String("t", "", "staged table")
	file := fs.String("f", "", "staged csv file")
	name := fs.String("n", "", "CVD (required with -f on unregistered files)")
	msg := fs.String("m", "", "commit message")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *table != "":
		p, err := core.LookupProvenance(store.DB(), *table)
		if err != nil {
			return err
		}
		d, err := store.Dataset(p.CVD)
		if err != nil {
			return err
		}
		v, err := d.CommitTable(*table, *msg)
		if err != nil {
			return err
		}
		fmt.Printf("committed %s as version %d of %s\n", *table, v, p.CVD)
	case *file != "":
		cvdName := *name
		if cvdName == "" {
			p, err := core.LookupProvenance(store.DB(), *file)
			if err != nil {
				return fmt.Errorf("-n <cvd> required: %w", err)
			}
			cvdName = p.CVD
		}
		d, err := store.Dataset(cvdName)
		if err != nil {
			return err
		}
		v, err := d.CommitCSV(*file, *msg)
		if err != nil {
			return err
		}
		fmt.Printf("committed %s as version %d of %s\n", *file, v, cvdName)
	default:
		return fmt.Errorf("need -t <table> or -f <file>")
	}
	return nil
}

func cmdDiff(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	vlist := fs.String("v", "", "two version ids, comma separated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: diff <cvd> -v <v1>,<v2>")
	}
	vids, err := parseVids(*vlist)
	if err != nil {
		return err
	}
	if len(vids) != 2 {
		return fmt.Errorf("diff needs exactly two versions")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	onlyA, onlyB, err := d.Diff(vids[0], vids[1])
	if err != nil {
		return err
	}
	fmt.Printf("only in v%d (%d records):\n", vids[0], len(onlyA))
	printRows(onlyA, 20)
	fmt.Printf("only in v%d (%d records):\n", vids[1], len(onlyB))
	printRows(onlyB, 20)
	return nil
}

func printRows(rows []orpheusdb.Row, limit int) {
	for i, r := range rows {
		if i == limit {
			fmt.Printf("  ... %d more\n", len(rows)-limit)
			return
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		fmt.Println("  " + strings.Join(parts, ", "))
	}
}

func cmdBranch(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("branch", flag.ContinueOnError)
	create := fs.String("c", "", "create a branch with this name")
	del := fs.String("d", "", "delete this branch")
	at := fs.String("v", "", "anchor version for -c (id or branch; default: latest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: branch <cvd> [-c <name> [-v <ref>] | -d <name>]")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	switch {
	case *create != "":
		head := orpheusdb.VersionID(0)
		if *at != "" {
			if head, err = d.ResolveRef(*at); err != nil {
				return err
			}
		}
		b, err := d.CreateBranch(*create, head)
		if err != nil {
			return err
		}
		fmt.Printf("created branch %s at v%d\n", b.Name, b.Head)
	case *del != "":
		if err := d.DeleteBranch(*del); err != nil {
			return err
		}
		fmt.Printf("deleted branch %s\n", *del)
	default:
		for _, b := range d.Branches() {
			fmt.Printf("%-12s head=v%-5d versions=%d\n", b.Name, b.Head, b.Lineage.Cardinality())
		}
	}
	return nil
}

func cmdMerge(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	from := fs.String("from", "", "side to merge in (version id or branch)")
	into := fs.String("into", "", "merge target (version id or branch; a branch head advances)")
	policy := fs.String("policy", "fail", "conflict resolution: fail, ours, or theirs")
	msg := fs.String("m", "", "merge commit message")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 || *from == "" || *into == "" {
		return fmt.Errorf("usage: merge <cvd> -from <ref> -into <ref> [-policy fail|ours|theirs] [-m msg]")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	pol, err := orpheusdb.ParseMergePolicy(*policy)
	if err != nil {
		return err
	}
	res, err := d.Merge(*into, *from, pol, *msg)
	if err != nil {
		return err
	}
	switch {
	case res.UpToDate:
		fmt.Printf("already up to date: v%d contains v%d\n", res.Ours, res.Theirs)
	case res.FastForward:
		fmt.Printf("fast-forward to v%d\n", res.Version)
	default:
		fmt.Printf("merged v%d into v%d as v%d (base v%d)\n", res.Theirs, res.Ours, res.Version, res.Base)
		if n := len(res.Conflicts); n > 0 {
			fmt.Printf("resolved %d conflict(s) using %s:\n", n, pol)
			for _, c := range res.Conflicts {
				fmt.Printf("  %s (%s)\n", c.Key, c.Kind())
			}
		}
	}
	return nil
}

func cmdLog(store *orpheusdb.Store, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: log <cvd>")
	}
	d, err := store.Dataset(args[0])
	if err != nil {
		return err
	}
	for _, v := range d.Versions() {
		info, err := d.Info(v)
		if err != nil {
			return err
		}
		parents := make([]string, len(info.Parents))
		for i, p := range info.Parents {
			parents[i] = strconv.Itoa(int(p))
		}
		fmt.Printf("v%-5d parents=[%s] records=%d committed=%s msg=%q\n",
			v, strings.Join(parents, ","), info.NumRecords,
			info.CommitTime.Format("2006-01-02 15:04:05"), info.Message)
	}
	return nil
}

func cmdOptimize(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	gamma := fs.Float64("gamma", 2.0, "storage threshold as a multiple of |R|")
	naive := fs.Bool("naive", false, "rebuild partitions from scratch")
	mu := fs.Float64("mu", 0, "tolerance factor: only migrate when Cavg > mu*C*avg")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: optimize <cvd> [-gamma 2.0] [-mu 1.5] [-naive]")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	if *mu > 0 {
		m, err := d.MaintainPartitions(*gamma, *mu)
		if err != nil {
			return err
		}
		if !m.Migrated {
			fmt.Printf("within tolerance: Cavg=%.0f C*avg=%.0f mu=%.2f — no migration\n",
				m.Cavg, m.BestCavg, *mu)
			return nil
		}
		res := m.Optimize
		fmt.Printf("migrated: Cavg %.0f -> %.0f records, partitions=%d, migrate=%v\n",
			m.Cavg, res.EstCheckout, res.Partitions, res.MigrationTime)
		return nil
	}
	var res *core.OptimizeResult
	if *naive {
		res, err = d.OptimizeNaive(*gamma)
	} else {
		res, err = d.Optimize(*gamma)
	}
	if err != nil {
		return err
	}
	fmt.Printf("lyresplit: delta=%.4f partitions=%d estS=%d estCavg=%.0f solve=%v migrate=%v (moved %d records)\n",
		res.Delta, res.Partitions, res.EstStorage, res.EstCheckout,
		res.SolveTime, res.MigrationTime, res.Migration.Plan.TotalRecords)
	return nil
}

func cmdRun(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	query := fs.String("q", "", "SQL statement")
	script := fs.String("s", "", "SQL script file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := *query
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("usage: run -q <sql> | -s <script.sql>")
	}
	res, err := store.RunScript(src)
	if err != nil {
		return err
	}
	if len(res.Cols) > 0 {
		fmt.Println(strings.Join(res.Cols, "\t"))
		for _, r := range res.Rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
	} else {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
	}
	return nil
}

func cmdExplain(store *orpheusdb.Store, args []string) error {
	pos, args := splitLeading(args)
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	vlist := fs.String("v", "1", "version id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: explain <cvd> -v <vid>")
	}
	d, err := store.Dataset(pos[0])
	if err != nil {
		return err
	}
	vids, err := parseVids(*vlist)
	if err != nil {
		return err
	}
	kind := d.Model()
	fmt.Println("-- checkout translation (Table 1):")
	fmt.Println(core.CheckoutSQL(kind, d.Name(), "t_prime", vids[0]))
	fmt.Println("-- commit translation (Table 1):")
	fmt.Println(core.CommitSQL(kind, d.Name(), "t_prime", vids[0]+1))
	return nil
}
