package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"orpheusdb/internal/repl"
)

// Replication commands. Both are network-first: a follower owns a store
// bootstrapped from the primary's snapshot (never a local .odb file), and
// the router owns no store at all — which is why main.go dispatches them
// before OpenStore.

// hasFollowFlag reports whether a serve invocation asked for follower mode
// (-follow or --follow, with either "-follow url" or "-follow=url" shape).
func hasFollowFlag(args []string) bool {
	for _, a := range args {
		a = strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		if a == "follow" || strings.HasPrefix(a, "follow=") {
			return true
		}
	}
	return false
}

// cmdServeFollower runs a read-only replica: bootstrap from the primary's
// snapshot, tail its WAL stream, serve the whole read API (plus /healthz lag
// and orpheus_repl_* metrics), and flip writable on POST /api/v1/promote.
func cmdServeFollower(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	follow := fs.String("follow", "", "primary base URL to replicate from (e.g. http://primary:7077)")
	addr := fs.String("addr", ":7078", "listen address")
	quiet := fs.Bool("quiet", false, "disable replication logging")
	logLevel := fs.String("log-level", "info", "log level: debug|info|warn|error")
	walDir := fs.String("wal-dir", "", "WAL directory armed on promotion (a promoted follower logs its own mutations)")
	reconnect := fs.Duration("reconnect", 500*time.Millisecond, "delay before stream reconnect attempts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow == "" {
		return errors.New("serve -follow: missing primary URL")
	}
	var logger *slog.Logger
	if !*quiet {
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			return fmt.Errorf("serve: bad -log-level %q: %w", *logLevel, err)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}

	f, err := repl.StartFollower(repl.FollowerConfig{
		Primary:        *follow,
		ReconnectDelay: *reconnect,
		PromoteWALDir:  *walDir,
		Logger:         logger,
	})
	if err != nil {
		return fmt.Errorf("serve -follow: %w", err)
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "orpheus: following %s (bootstrapped at LSN %d)\n",
		*follow, f.Store().WALStatus().AppliedLSN)

	srv := &http.Server{
		Addr: *addr,
		// Resolve the handler per request: a re-bootstrap (after the primary
		// truncates past us) swaps in a whole new store + handler pair.
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.Handler().ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return serveUntilSignal(srv, fmt.Sprintf("follower of %s on %s", *follow, *addr))
}

// cmdRoute runs the thin read router: checkout/diff/metadata GETs and
// single-statement SELECT queries fan out round-robin across healthy
// followers; everything else proxies to the primary. GET /healthz on the
// router reports the backend roster with per-follower lag.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	primary := fs.String("primary", "", "primary base URL (all writes go here)")
	followers := fs.String("followers", "", "comma-separated follower base URLs (reads fan out here)")
	addr := fs.String("addr", ":7079", "listen address")
	quiet := fs.Bool("quiet", false, "disable health-transition logging")
	interval := fs.Duration("health-interval", time.Second, "backend health poll cadence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *primary == "" {
		return errors.New("route: missing -primary URL")
	}
	var followerURLs []string
	for _, u := range strings.Split(*followers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			followerURLs = append(followerURLs, u)
		}
	}
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	rt, err := repl.NewRouter(repl.RouterConfig{
		Primary:        *primary,
		Followers:      followerURLs,
		HealthInterval: *interval,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	srv := &http.Server{Addr: *addr, Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	return serveUntilSignal(srv, fmt.Sprintf("routing %d follower(s) for %s on %s",
		len(followerURLs), *primary, *addr))
}

// serveUntilSignal runs srv until it fails or an interrupt asks for a
// graceful shutdown — the same lifecycle cmdServe uses.
func serveUntilSignal(srv *http.Server, banner string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "orpheus: %s\n", banner)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "orpheus: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	return nil
}
