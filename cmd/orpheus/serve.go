package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// cmdServe runs the store as a concurrent HTTP/JSON versioning service
// (`orpheus -d store.odb serve -addr :7077`). The process persists commits
// asynchronously with a debounced save and flushes on shutdown.
func cmdServe(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":7077", "listen address")
	quiet := fs.Bool("quiet", false, "disable request logging")
	saveDelay := fs.Duration("save-delay", orpheusdb.DefaultSaveDelay, "debounce interval for async persistence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store.SetSaveDelay(*saveDelay)

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "orpheus: ", log.LstdFlags)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(store, logger),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "orpheus: serving on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "orpheus: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	return store.Flush()
}
