package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// cmdServe runs the store as a concurrent HTTP/JSON versioning service
// (`orpheus -d store.odb serve -addr :7077`). Commits are made durable
// through the write-ahead log (enabled by default, see -wal* and -fsync
// flags); snapshots happen as debounced checkpoints that also truncate the
// log, and the store flushes on shutdown. Observability comes built in:
// Prometheus metrics on GET /metrics, request traces on GET /debug/traces
// (slow-trace capture tuned by -slow), structured access logs leveled by
// -log-level, and Go's runtime profiler on /debug/pprof/ behind -pprof.
func cmdServe(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":7077", "listen address")
	quiet := fs.Bool("quiet", false, "disable request logging")
	logLevel := fs.String("log-level", "info", "access log level: debug|info|warn|error")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof profiles under /debug/pprof/")
	slow := fs.Duration("slow", 0, "slow-trace threshold (0 keeps the default)")
	saveDelay := fs.Duration("save-delay", orpheusdb.DefaultSaveDelay, "debounce interval for async checkpoints")
	walOn := fs.Bool("wal", true, "write-ahead log every mutation (crash recovery)")
	walDir := fs.String("wal-dir", "", "WAL segment directory (default <store>.wal)")
	fsync := fs.String("fsync", "interval", "WAL fsync policy: always|interval|off")
	fsyncEvery := fs.Duration("fsync-interval", 50*time.Millisecond, "background fsync cadence for -fsync=interval")
	segBytes := fs.Int64("wal-segment-bytes", 0, "rotate WAL segments past this size (default 16 MiB)")
	optimize := fs.Bool("optimize", false, "run the background partition optimizer")
	optGamma := fs.Float64("optimize-gamma", 2, "optimizer storage budget factor (γ = factor·|R|)")
	optMu := fs.Float64("optimize-mu", 2, "optimizer drift trigger µ (0 observes without migrating)")
	optBatch := fs.Int64("optimize-batch-rows", 4096, "max records a migration batch moves in one critical section")
	optEvery := fs.Int("optimize-recompute-every", 16, "refresh C*avg every N observed commits")
	optInterval := fs.Duration("optimize-interval", 30*time.Second, "fallback sweep period without commit traffic")
	history := fs.Bool("history", true, "retain metrics history (GET /api/v1/metrics/history, orpheus top)")
	histInterval := fs.Duration("history-interval", 10*time.Second, "finest history sampling cadence")
	histRetain := fs.Duration("history-retain", time.Hour, "retention at the finest cadence (a 1m/24h coarse tier rides along)")
	// Consumed by main before the store opened (the engine is chosen at
	// open); declared here so parsing accepts them and -h documents them.
	backend := fs.String("backend", "", "storage engine: memory|disk (applied at store open)")
	fs.Int64("page-budget", 0, "disk backend resident working-set cap in bytes (applied at store open)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backend != "" && string(store.BackendKind()) != *backend {
		return fmt.Errorf("serve: store opened with backend %q but -backend=%q requested", store.BackendKind(), *backend)
	}
	if store.BackendKind() == orpheusdb.BackendDisk {
		fmt.Fprintf(os.Stderr, "orpheus: disk backend %s (page budget %d bytes)\n",
			store.Path(), store.DB().PageBudget())
	}
	store.SetSaveDelay(*saveDelay)
	if !*walOn && !store.WALEnabled() && store.Path() != "" {
		// Serving without the WAL while a log exists would save snapshots
		// whose watermark never advances past the stale tail; the next
		// WAL-enabled open would then replay obsolete records over newer
		// state. Refuse rather than quietly poisoning the store.
		legacy := store.Path() + ".wal"
		if fi, err := os.Stat(legacy); err == nil && fi.IsDir() {
			return fmt.Errorf("serve: %s exists; serving with -wal=false would desync it from the snapshot (delete the log or drop the flag)", legacy)
		}
	}
	if *walOn && !store.WALEnabled() {
		if store.Path() == "" && *walDir == "" {
			return errors.New("serve: -wal needs -wal-dir for an in-memory store")
		}
		policy, err := orpheusdb.ParseFsyncPolicy(*fsync)
		if err != nil {
			return err
		}
		if err := store.EnableWAL(orpheusdb.WALConfig{
			Dir:          *walDir,
			Policy:       policy,
			SyncInterval: *fsyncEvery,
			SegmentBytes: *segBytes,
		}); err != nil {
			return fmt.Errorf("serve: enable WAL: %w", err)
		}
		st := store.WALStatus()
		fmt.Fprintf(os.Stderr, "orpheus: WAL %s (fsync=%s, applied LSN %d)\n", st.Dir, st.Policy, st.AppliedLSN)
	}

	if *optimize {
		mu := *optMu
		if mu == 0 {
			mu = orpheusdb.MuDisabled
		}
		opt, err := store.StartPartitionOptimizer(orpheusdb.PartitionOptimizerConfig{
			GammaFactor:    *optGamma,
			Mu:             mu,
			BatchRows:      *optBatch,
			RecomputeEvery: *optEvery,
			Interval:       *optInterval,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		defer opt.Stop()
		fmt.Fprintf(os.Stderr, "orpheus: partition optimizer on (gamma=%g mu=%g batch=%d)\n",
			*optGamma, *optMu, *optBatch)
	}

	if *history {
		tiers := []orpheusdb.HistoryTier{{Interval: *histInterval, Retain: *histRetain}}
		// A coarse day-long tier rides along whenever the configured cadence
		// is finer than a minute; otherwise the single tier is the history.
		if *histInterval < time.Minute {
			tiers = append(tiers, orpheusdb.HistoryTier{Interval: time.Minute, Retain: 24 * time.Hour})
		}
		if _, err := store.StartMetricsHistory(orpheusdb.HistoryOptions{Tiers: tiers}); err != nil {
			return fmt.Errorf("serve: metrics history: %w", err)
		}
		defer store.StopMetricsHistory()
	}

	if *slow > 0 {
		store.Tracer().SetSlowThreshold(*slow)
	}
	var logger *slog.Logger
	if !*quiet {
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			return fmt.Errorf("serve: bad -log-level %q: %w", *logLevel, err)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}
	var handler http.Handler = server.New(store, logger)
	if *pprofOn {
		// The API mux stays authoritative for everything else; only the
		// profiler prefix is diverted, and only when asked for — profiles
		// expose heap contents and should not be reachable by default.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
		fmt.Fprintln(os.Stderr, "orpheus: pprof mounted on /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "orpheus: serving on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "orpheus: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	return store.Flush()
}
