package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// cmdServe runs the store as a concurrent HTTP/JSON versioning service
// (`orpheus -d store.odb serve -addr :7077`). Commits are made durable
// through the write-ahead log (enabled by default, see -wal* and -fsync
// flags); snapshots happen as debounced checkpoints that also truncate the
// log, and the store flushes on shutdown.
func cmdServe(store *orpheusdb.Store, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":7077", "listen address")
	quiet := fs.Bool("quiet", false, "disable request logging")
	saveDelay := fs.Duration("save-delay", orpheusdb.DefaultSaveDelay, "debounce interval for async checkpoints")
	walOn := fs.Bool("wal", true, "write-ahead log every mutation (crash recovery)")
	walDir := fs.String("wal-dir", "", "WAL segment directory (default <store>.wal)")
	fsync := fs.String("fsync", "interval", "WAL fsync policy: always|interval|off")
	fsyncEvery := fs.Duration("fsync-interval", 50*time.Millisecond, "background fsync cadence for -fsync=interval")
	segBytes := fs.Int64("wal-segment-bytes", 0, "rotate WAL segments past this size (default 16 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store.SetSaveDelay(*saveDelay)
	if !*walOn && !store.WALEnabled() && store.Path() != "" {
		// Serving without the WAL while a log exists would save snapshots
		// whose watermark never advances past the stale tail; the next
		// WAL-enabled open would then replay obsolete records over newer
		// state. Refuse rather than quietly poisoning the store.
		legacy := store.Path() + ".wal"
		if fi, err := os.Stat(legacy); err == nil && fi.IsDir() {
			return fmt.Errorf("serve: %s exists; serving with -wal=false would desync it from the snapshot (delete the log or drop the flag)", legacy)
		}
	}
	if *walOn && !store.WALEnabled() {
		if store.Path() == "" && *walDir == "" {
			return errors.New("serve: -wal needs -wal-dir for an in-memory store")
		}
		policy, err := orpheusdb.ParseFsyncPolicy(*fsync)
		if err != nil {
			return err
		}
		if err := store.EnableWAL(orpheusdb.WALConfig{
			Dir:          *walDir,
			Policy:       policy,
			SyncInterval: *fsyncEvery,
			SegmentBytes: *segBytes,
		}); err != nil {
			return fmt.Errorf("serve: enable WAL: %w", err)
		}
		st := store.WALStatus()
		fmt.Fprintf(os.Stderr, "orpheus: WAL %s (fsync=%s, applied LSN %d)\n", st.Dir, st.Policy, st.AppliedLSN)
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "orpheus: ", log.LstdFlags)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(store, logger),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "orpheus: serving on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "orpheus: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	return store.Flush()
}
