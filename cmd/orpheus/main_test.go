package main

import (
	"os"
	"path/filepath"
	"testing"
)

// run exercises the CLI end to end against a store file in a temp dir.
func cli(t *testing.T, dir string, args ...string) error {
	t.Helper()
	full := append([]string{"-d", filepath.Join(dir, "s.odb")}, args...)
	return run(full)
}

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "data.csv",
		"protein1:string,protein2:string,coexpression:integer\nA,B,10\nC,D,20\n")

	steps := [][]string{
		{"init", "-n", "prot", "-f", csv, "-p", "protein1,protein2"},
		{"checkout", "prot", "-v", "1", "-t", "work"},
		{"run", "-q", "UPDATE work SET coexpression = 99 WHERE protein1 = 'A'"},
		{"commit", "-t", "work", "-m", "bump"},
		{"log", "prot"},
		{"diff", "prot", "-v", "1,2"},
		{"ls"},
		{"run", "-q", "SELECT vid, count(*) FROM CVD prot GROUP BY vid"},
		{"run", "-q", "SELECT * FROM VERSION 2 OF CVD prot"},
		{"explain", "prot", "-v", "1"},
		{"whoami"},
		{"create_user", "ann"},
	}
	for _, s := range steps {
		if err := cli(t, dir, s...); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

func TestCLICSVCheckoutCommit(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "d.csv", "k:integer,v:string\n1,a\n")
	if err := cli(t, dir, "init", "-n", "d", "-f", csv); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "work.csv")
	if err := cli(t, dir, "checkout", "d", "-v", "1", "-f", out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	if err := cli(t, dir, "commit", "-f", out, "-m", "recommit"); err != nil {
		t.Fatal(err)
	}
}

func TestCLIOptimize(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "d.csv", "k:integer\n1\n2\n3\n")
	if err := cli(t, dir, "init", "-n", "d", "-f", csv, "-m", "partitioned-rlist"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cli(t, dir, "checkout", "d", "-v", "1", "-t", "w"); err != nil {
			t.Fatal(err)
		}
		if err := cli(t, dir, "commit", "-t", "w", "-m", "branch"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli(t, dir, "optimize", "d", "-gamma", "2.0"); err != nil {
		t.Fatal(err)
	}
	if err := cli(t, dir, "run", "-q", "SELECT count(*) FROM VERSION 4 OF CVD d"); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"nope"},
		{"checkout", "missing", "-v", "1", "-t", "t"},
		{"drop", "missing"},
		{"diff", "missing", "-v", "1,2"},
		{"run", "-q", "SELEC nonsense"},
		{"commit", "-t", "unstaged"},
		{"init", "-n", "x"},
		{"checkout"},
	}
	for _, s := range cases {
		if err := cli(t, dir, s...); err == nil {
			t.Errorf("%v should fail", s)
		}
	}
}

func TestCLIUserScoping(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "d.csv", "k:integer\n1\n")
	if err := cli(t, dir, "init", "-n", "d", "-f", csv); err != nil {
		t.Fatal(err)
	}
	// bob checks out; alice cannot commit his table.
	if err := run([]string{"-d", filepath.Join(dir, "s.odb"), "-u", "bob", "checkout", "d", "-v", "1", "-t", "w"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-d", filepath.Join(dir, "s.odb"), "-u", "alice", "commit", "-t", "w", "-m", "steal"}); err == nil {
		t.Fatal("cross-user commit allowed")
	}
	if err := run([]string{"-d", filepath.Join(dir, "s.odb"), "-u", "bob", "commit", "-t", "w", "-m", "mine"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIOptimizeWithTolerance(t *testing.T) {
	dir := t.TempDir()
	csv := writeCSV(t, dir, "d.csv", "k:integer\n1\n2\n")
	if err := cli(t, dir, "init", "-n", "d", "-f", csv, "-m", "partitioned-rlist"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cli(t, dir, "checkout", "d", "-v", "1", "-t", "w"); err != nil {
			t.Fatal(err)
		}
		if err := cli(t, dir, "commit", "-t", "w", "-m", "branch"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli(t, dir, "optimize", "d", "-gamma", "2.0", "-mu", "1.2"); err != nil {
		t.Fatal(err)
	}
	// A second tolerance check is a no-op.
	if err := cli(t, dir, "optimize", "d", "-gamma", "2.0", "-mu", "1.2"); err != nil {
		t.Fatal(err)
	}
}
