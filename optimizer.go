package orpheusdb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/core"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/partition"
)

// Background partition optimizer ("live LYRESPLIT", Section 4.3 under
// traffic). A store-owned goroutine observes every commit into a per-dataset
// partition.Online instance, and when the observed checkout cost drifts past
// µ times the best cost LYRESPLIT can achieve under the storage budget, it
// replans the layout and migrates it in bounded batches. Each batch takes the
// dataset's exclusive lock only briefly — checkouts keep running between
// batches — and is WAL-logged as an optimize-migrate record before the lock
// is released, so a crash mid-migration replays to a consistent layout.

// PartitionOptimizerConfig tunes the background optimizer. The zero value of
// any field selects its default.
type PartitionOptimizerConfig struct {
	// GammaFactor sets the storage budget γ = GammaFactor·|R|. Default 2.
	GammaFactor float64
	// Mu is the drift trigger: migrate when Cavg > Mu·C*avg. Mu = 0 keeps
	// the optimizer observing without ever migrating on its own (manual
	// triggers still work). Default 2 — set MuDisabled for observe-only.
	Mu float64
	// BatchRows bounds the records a single migration batch inserts or
	// deletes, and therefore how long the per-batch critical section holds
	// the dataset lock. Default 4096.
	BatchRows int64
	// RecomputeEvery refreshes C*avg every that many observed commits.
	// Default 16.
	RecomputeEvery int
	// Interval is the fallback sweep period when no commit notifications
	// arrive (e.g. after WAL replay). Default 30s.
	Interval time.Duration
}

// MuDisabled is a sentinel for PartitionOptimizerConfig.Mu requesting
// observe-only mode (the config treats Mu = 0 as "use the default").
const MuDisabled = -1

func (c PartitionOptimizerConfig) withDefaults() PartitionOptimizerConfig {
	if c.GammaFactor == 0 {
		c.GammaFactor = 2
	}
	switch c.Mu {
	case 0:
		c.Mu = 2
	case MuDisabled:
		c.Mu = 0
	}
	if c.BatchRows == 0 {
		c.BatchRows = 4096
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 16
	}
	if c.Interval == 0 {
		c.Interval = 30 * time.Second
	}
	return c
}

// PartitionOptimizer is the running background optimizer. One per store,
// started with Store.StartPartitionOptimizer.
type PartitionOptimizer struct {
	store *Store
	cfg   PartitionOptimizerConfig

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	states map[string]*optimizerState
}

// optimizerState is the optimizer's per-dataset bookkeeping. Guarded by
// PartitionOptimizer.mu except where noted.
type optimizerState struct {
	// migrateMu serializes migrations of one dataset: a manual trigger
	// racing a drift migration would otherwise interleave two plans, and
	// the second plan's batches were computed against a layout the first
	// is rewriting. Independent datasets still migrate concurrently.
	migrateMu sync.Mutex

	// onlineMu guards every access to online: the sweep goroutine drives it
	// (ObserveCommit / SetAccessWeights / Drifted) while Status reads its
	// counters from API goroutines. partition.Online itself is
	// single-threaded by contract, so the lock lives here at the sharing
	// boundary.
	onlineMu sync.Mutex
	online   *partition.Online
	// observed counts the prefix of the dataset's version order already fed
	// into online.
	observed int

	migrations int64
	batches    int64
	rowsMoved  int64
	lastRun    time.Time
	lastReason string
	lastErr    string

	// Last sweep's drift inputs: the (possibly heat-weighted) current
	// checkout cost and whether it crossed the µ trigger.
	lastCavg     float64
	lastDrifted  bool
	lastWeighted bool
}

// PartitionOptimizerStatus is one dataset's optimizer view, served on
// GET /api/v1/datasets/{name}/partitioning.
type PartitionOptimizerStatus struct {
	Running         bool    `json:"running"`
	GammaFactor     float64 `json:"gamma_factor,omitempty"`
	Mu              float64 `json:"mu"`
	BatchRows       int64   `json:"batch_rows,omitempty"`
	CommitsObserved int     `json:"commits_observed"`
	BestCavg        float64 `json:"best_avg_checkout_records"`
	DeltaStar       float64 `json:"delta_star"`
	Migrations      int64   `json:"migrations"`
	Batches         int64   `json:"batches"`
	RowsMoved       int64   `json:"rows_moved"`
	LastRun         string  `json:"last_run,omitempty"`
	LastReason      string  `json:"last_reason,omitempty"`
	LastError       string  `json:"last_error,omitempty"`
	// Last sweep's drift decision: the current checkout cost fed into the µ
	// trigger (heat-weighted when access weights were observed), and whether
	// it crossed it.
	Cavg           float64 `json:"avg_checkout_records"`
	Drifted        bool    `json:"drifted"`
	AccessWeighted bool    `json:"access_weighted"`
}

// MigrationReport summarizes one executed repartitioning.
type MigrationReport struct {
	Dataset    string        `json:"dataset"`
	Reason     string        `json:"reason"`
	Delta      float64       `json:"delta"`
	Groups     int           `json:"groups"`
	Batches    int           `json:"batches"`
	RowsMoved  int64         `json:"rows_moved"`
	SolveTime  time.Duration `json:"-"`
	TotalTime  time.Duration `json:"-"`
	SolveMs    int64         `json:"solve_ms"`
	TotalMs    int64         `json:"total_ms"`
	Partitions int           `json:"partitions"`
}

// StartPartitionOptimizer launches the store's background partition
// optimizer. At most one runs per store; starting a second is an error.
// The returned handle is also reachable via Store.PartitionOptimizer.
func (s *Store) StartPartitionOptimizer(cfg PartitionOptimizerConfig) (*PartitionOptimizer, error) {
	cfg = cfg.withDefaults()
	// Surface bad tunables now, not on the first observed commit: the
	// goroutine has no caller to report to.
	probe := partition.NewOnline(cfg.GammaFactor, cfg.Mu)
	probe.RecomputeEvery = cfg.RecomputeEvery
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("orpheusdb: partition optimizer: %w", err)
	}
	o := &PartitionOptimizer{
		store:  s,
		cfg:    cfg,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		states: make(map[string]*optimizerState),
	}
	if !s.optimizer.CompareAndSwap(nil, o) {
		return nil, fmt.Errorf("orpheusdb: partition optimizer already running")
	}
	go o.loop()
	return o, nil
}

// PartitionOptimizer returns the running optimizer, or nil.
func (s *Store) PartitionOptimizer() *PartitionOptimizer {
	return s.optimizer.Load()
}

// wakeOptimizer pings the optimizer after a commit. Non-blocking: a full
// wake channel means a sweep is already pending.
func (s *Store) wakeOptimizer() {
	if o := s.optimizer.Load(); o != nil {
		select {
		case o.wake <- struct{}{}:
		default:
		}
	}
}

// Stop shuts the optimizer down and waits for its goroutine to exit. Any
// in-flight migration finishes its current batch sequence first.
func (o *PartitionOptimizer) Stop() {
	close(o.stop)
	<-o.done
	o.store.optimizer.CompareAndSwap(o, nil)
}

// Config returns the optimizer's effective (defaulted) configuration.
func (o *PartitionOptimizer) Config() PartitionOptimizerConfig { return o.cfg }

func (o *PartitionOptimizer) loop() {
	defer close(o.done)
	t := time.NewTicker(o.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-o.wake:
		case <-t.C:
		}
		o.sweep()
	}
}

// sweep feeds unobserved commits of every partitioned dataset into its
// Online instance and migrates any dataset whose cost has drifted.
func (o *PartitionOptimizer) sweep() {
	for _, name := range o.store.List() {
		select {
		case <-o.stop:
			return
		default:
		}
		o.sweepDataset(name)
	}
}

// state returns (creating on first use) the per-dataset bookkeeping.
func (o *PartitionOptimizer) state(name string) *optimizerState {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.states[name]
	if !ok {
		online := partition.NewOnline(o.cfg.GammaFactor, o.cfg.Mu)
		online.RecomputeEvery = o.cfg.RecomputeEvery
		st = &optimizerState{online: online}
		o.states[name] = st
	}
	return st
}

func (o *PartitionOptimizer) sweepDataset(name string) {
	d, err := o.store.Dataset(name)
	if err != nil || d.Model() != PartitionedRlist {
		return
	}
	st := o.state(name)

	// Collect the unobserved suffix of the commit order under the read
	// lock: version ids, parents, and the persisted lineage bitmaps.
	type feed struct {
		v       VersionID
		parents []VersionID
		set     *bitmap.Bitmap
	}
	d.mu.RLock()
	vids := d.cvd.Versions()
	var feeds []feed
	for _, v := range vids[st.observed:] {
		info, ierr := d.cvd.Info(v)
		if ierr != nil {
			continue
		}
		set, serr := d.cvd.RlistSet(v)
		if serr != nil {
			continue
		}
		feeds = append(feeds, feed{v: v, parents: info.Parents, set: set})
	}
	status, _ := d.cvd.PartitionStatus()
	// Observed access heat: when traffic has been recorded, drift is judged
	// on the weighted checkout cost (Appendix C.2) instead of the paper's
	// uniform assumption. The weighted current cost must come from the same
	// lock acquisition as status, so both describe one layout.
	weights := d.cvd.Heat().Weights()
	var weightedCavg float64
	if weights != nil && status != nil {
		if pm, ok := d.cvd.Model().(core.PartitionedModel); ok {
			weightedCavg = pm.WeightedCheckoutCost(weights)
		}
	}
	d.mu.RUnlock()

	st.onlineMu.Lock()
	for _, f := range feeds {
		if err := st.online.ObserveCommit(f.v, f.parents, f.set); err != nil {
			st.onlineMu.Unlock()
			o.recordErr(st, err)
			return
		}
	}
	st.online.SetAccessWeights(weights)
	st.onlineMu.Unlock()

	if status == nil {
		o.mu.Lock()
		st.observed = len(vids)
		o.mu.Unlock()
		return
	}
	cavg := status.CheckoutCost
	if weights != nil {
		cavg = weightedCavg
	}
	st.onlineMu.Lock()
	drifted := st.online.Drifted(cavg)
	st.onlineMu.Unlock()
	o.mu.Lock()
	st.observed = len(vids)
	st.lastCavg = cavg
	st.lastDrifted = drifted
	st.lastWeighted = weights != nil
	o.mu.Unlock()

	if !drifted {
		return
	}
	if _, err := o.migrate(d, st, "drift"); err != nil {
		o.recordErr(st, err)
	}
}

func (o *PartitionOptimizer) recordErr(st *optimizerState, err error) {
	o.mu.Lock()
	st.lastErr = err.Error()
	o.mu.Unlock()
}

// Trigger replans and migrates the named dataset immediately, regardless of
// the drift trigger — the manual path behind
// POST /api/v1/datasets/{name}/partitioning.
func (o *PartitionOptimizer) Trigger(name string) (*MigrationReport, error) {
	d, err := o.store.Dataset(name)
	if err != nil {
		return nil, err
	}
	st := o.state(name)
	rep, err := o.migrate(d, st, "manual")
	if err != nil {
		o.recordErr(st, err)
	}
	return rep, err
}

// migrate plans a repartitioning under the dataset read lock, then executes
// it batch by batch: each batch briefly takes the exclusive lock, applies,
// invalidates exactly the cache entries reading the moved versions, and
// appends an optimize-migrate WAL record before releasing — checkouts run
// freely between batches, and a crash replays the logged prefix to a
// consistent layout.
func (o *PartitionOptimizer) migrate(d *Dataset, st *optimizerState, reason string) (*MigrationReport, error) {
	st.migrateMu.Lock()
	defer st.migrateMu.Unlock()
	s := o.store
	t0 := time.Now()
	ctx, root := s.obs.tracer.StartTrace(context.Background(), "optimize")
	defer root.End()

	_, planSpan := obs.StartSpan(ctx, "optimize.plan")
	d.mu.RLock()
	var plan *core.RepartitionPlan
	err := d.aliveLocked()
	if err == nil {
		plan, err = d.cvd.PlanRepartition(o.cfg.GammaFactor, o.cfg.BatchRows)
	}
	d.mu.RUnlock()
	planSpan.End()
	if err != nil {
		return nil, err
	}

	stats := s.db.Stats()
	var moved int64
	for _, b := range plan.Batches {
		select {
		case <-o.stop:
			// Shutting down mid-plan is safe: every prefix of the batch
			// sequence leaves a consistent layout (and is already logged).
			return nil, fmt.Errorf("orpheusdb: %s: migration interrupted by optimizer shutdown", d.cvd.Name())
		default:
		}
		n, aerr := o.applyBatch(ctx, d, b)
		if aerr != nil {
			return nil, aerr
		}
		moved += n
		stats.PartitionBatches.Add(1)
		stats.PartitionRowsMoved.Add(n)
	}
	stats.PartitionMigrations.Add(1)
	total := time.Since(t0)
	s.obs.partitionMigrateSeconds.Observe(total.Seconds())
	s.ScheduleSave()

	o.mu.Lock()
	st.migrations++
	st.batches += int64(len(plan.Batches))
	st.rowsMoved += moved
	st.lastRun = time.Now()
	st.lastReason = reason
	st.lastErr = ""
	o.mu.Unlock()

	status, _ := d.PartitionStatus()
	rep := &MigrationReport{
		Dataset:   d.cvd.Name(),
		Reason:    reason,
		Delta:     plan.Delta,
		Groups:    plan.Groups,
		Batches:   len(plan.Batches),
		RowsMoved: moved,
		SolveTime: plan.SolveTime,
		TotalTime: total,
		SolveMs:   plan.SolveTime.Milliseconds(),
		TotalMs:   total.Milliseconds(),
	}
	if status != nil {
		rep.Partitions = len(status.Partitions)
	}
	return rep, nil
}

// applyBatch is one migration batch's critical section.
func (o *PartitionOptimizer) applyBatch(ctx context.Context, d *Dataset, b core.PartitionBatch) (int64, error) {
	s := o.store
	_, span := obs.StartSpan(ctx, "optimize.migrate")
	defer span.End()
	s.ioMu.RLock()
	defer s.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return 0, err
	}
	n, err := d.cvd.ApplyPartitionBatch(b)
	if err != nil {
		return 0, err
	}
	// Migration preserves every version's materialized contents, so only
	// entries reading the remapped versions are dropped — and the dataset
	// generation (the ETag validator) does not move.
	if len(b.Versions) > 0 {
		vids := make([]int64, len(b.Versions))
		for i, v := range b.Versions {
			vids[i] = int64(v)
		}
		s.cache.InvalidateVersions(d.cvd.Name(), bitmap.FromSlice(vids))
	}
	if err := s.logMutation(migrateBatchRecord(d.cvd.Name(), b)); err != nil {
		return n, err
	}
	return n, nil
}

// Status reports the optimizer's view of one dataset.
func (o *PartitionOptimizer) Status(name string) PartitionOptimizerStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := PartitionOptimizerStatus{
		Running:     true,
		GammaFactor: o.cfg.GammaFactor,
		Mu:          o.cfg.Mu,
		BatchRows:   o.cfg.BatchRows,
	}
	st, ok := o.states[name]
	if !ok {
		return out
	}
	st.onlineMu.Lock()
	out.CommitsObserved = st.online.Commits()
	out.BestCavg = st.online.BestCheckoutCost()
	out.DeltaStar = st.online.DeltaStar()
	st.onlineMu.Unlock()
	out.Migrations = st.migrations
	out.Batches = st.batches
	out.RowsMoved = st.rowsMoved
	out.LastReason = st.lastReason
	out.LastError = st.lastErr
	out.Cavg = st.lastCavg
	out.Drifted = st.lastDrifted
	out.AccessWeighted = st.lastWeighted
	if !st.lastRun.IsZero() {
		out.LastRun = st.lastRun.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// PartitionOptimizerHealth is the optimizer's store-wide health summary,
// served on /healthz: a silently failing optimizer must not look healthy.
type PartitionOptimizerHealth struct {
	Running    bool   `json:"running"`
	Datasets   int    `json:"datasets_observed"`
	Migrations int64  `json:"migrations"`
	LastRun    string `json:"last_run,omitempty"`
	// LastError is the most recent unrecovered per-dataset error, with the
	// dataset it came from.
	LastError        string `json:"last_error,omitempty"`
	LastErrorDataset string `json:"last_error_dataset,omitempty"`
}

// Health aggregates the per-dataset optimizer states for /healthz.
func (o *PartitionOptimizer) Health() PartitionOptimizerHealth {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := PartitionOptimizerHealth{Running: true, Datasets: len(o.states)}
	var lastRun time.Time
	for name, st := range o.states {
		out.Migrations += st.migrations
		if st.lastRun.After(lastRun) {
			lastRun = st.lastRun
		}
		if st.lastErr != "" {
			out.LastError = st.lastErr
			out.LastErrorDataset = name
		}
	}
	if !lastRun.IsZero() {
		out.LastRun = lastRun.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// PartitionStatus snapshots the dataset's partitioned layout (partition
// sizes, storage amplification, δ*, current average checkout cost). ok is
// false for datasets on non-partitioned models.
func (d *Dataset) PartitionStatus() (*core.PartitionStatus, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.PartitionStatus()
}
