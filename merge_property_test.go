package orpheusdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Merge-correctness property suite: random derivation DAGs are grown commit
// by commit, then random version pairs are merged and the results checked
// against the algebraic laws the subsystem promises:
//
//   - Merge(x, x) is a no-op (idempotence: the result is x's record set)
//   - Merge(a, b) and Merge(b, a) produce the same record contents when
//     conflict-free, and mirrored contents under ours/theirs policies
//   - conflict-free merges equal the bitmap formula
//     (ours ∩ theirs) ∪ (ours − base) ∪ (theirs − base) exactly
//   - the conflict report is symmetric in (a, b)
//
// The suite runs in CI's race-mode job alongside the rest of the tests.

// dagState mirrors each version's rows (id → value) for reference checks.
type dagState struct {
	d    *Dataset
	rows map[VersionID]map[int]string
	vids []VersionID
}

// growDAG builds a random derivation DAG with nCommits commits. Each commit
// picks a random parent and randomly adds, modifies, and deletes keys.
// Values are globally unique so two branches can never converge on identical
// content independently — that (deliberate) dedup case would make the merged
// rlist a strict subset of the raw bitmap formula, and it has its own
// targeted test (TestMergeAddAddIdentical in internal/merge); here we pin
// the formula exactly.
func growDAG(t *testing.T, d *Dataset, rng *rand.Rand, nCommits int) *dagState {
	t.Helper()
	st := &dagState{d: d, rows: make(map[VersionID]map[int]string)}
	nextKey, uniq := 0, 0
	val := func(prefix string) string {
		uniq++
		return fmt.Sprintf("%s%d", prefix, uniq)
	}
	commit := func(parent VersionID, content map[int]string, msg string) VersionID {
		keys := make([]int, 0, len(content))
		for k := range content {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		rows := make([]Row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, Row{Int(int64(k)), String(content[k])})
		}
		var parents []VersionID
		if parent != 0 {
			parents = []VersionID{parent}
		}
		v, err := d.Commit(rows, parents, msg)
		if err != nil {
			t.Fatalf("commit %s: %v", msg, err)
		}
		st.rows[v] = content
		st.vids = append(st.vids, v)
		return v
	}

	root := map[int]string{}
	for i := 0; i < 3+rng.Intn(4); i++ {
		root[nextKey] = val("r")
		nextKey++
	}
	commit(0, root, "root")

	for i := 1; i < nCommits; i++ {
		parent := st.vids[rng.Intn(len(st.vids))]
		content := make(map[int]string, len(st.rows[parent]))
		for k, v := range st.rows[parent] {
			content[k] = v
		}
		for _, k := range keysOfMap(content) {
			switch rng.Intn(6) {
			case 0: // modify
				content[k] = val("m")
			case 1: // delete
				delete(content, k)
			}
		}
		for rng.Intn(3) == 0 { // add
			content[nextKey] = val("a")
			nextKey++
		}
		commit(parent, content, fmt.Sprintf("c%d", i))
	}
	return st
}

func keysOfMap(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// contentOf renders a version's checkout as a canonical string.
func contentOf(t *testing.T, d *Dataset, v VersionID) string {
	t.Helper()
	rows, err := d.Checkout(v)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%d=%s", r[0].I, r[1].S)
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

func conflictKeys(res *MergeResult) []string {
	out := make([]string, len(res.Conflicts))
	for i, c := range res.Conflicts {
		out[i] = c.Key
	}
	sort.Strings(out)
	return out
}

func TestMergePropertyRandomDAGs(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel() // exercise the locking paths under -race
			rng := rand.New(rand.NewSource(seed))
			s := NewStore()
			d, err := s.Init(fmt.Sprintf("dag%d", seed), []Column{
				{Name: "id", Type: KindInt},
				{Name: "val", Type: KindString},
			}, InitOptions{PrimaryKey: []string{"id"}})
			if err != nil {
				t.Fatal(err)
			}
			st := growDAG(t, d, rng, 12)

			// Idempotence over every version: merging x with x is x.
			for _, v := range st.vids {
				res, err := d.Merge(fmt.Sprint(v), fmt.Sprint(v), MergeFail, "")
				if err != nil || !res.UpToDate || res.Version != v {
					t.Fatalf("Merge(%d,%d) = %+v, %v", v, v, res, err)
				}
			}

			for trial := 0; trial < 12; trial++ {
				a := st.vids[rng.Intn(len(st.vids))]
				b := st.vids[rng.Intn(len(st.vids))]
				cvd := d.CVD()

				fwd, errF := d.Merge(fmt.Sprint(a), fmt.Sprint(b), MergeFail, "")
				rev, errR := d.Merge(fmt.Sprint(b), fmt.Sprint(a), MergeFail, "")

				// Conflict reports are symmetric.
				var ceF, ceR *MergeConflictError
				if errors.As(errF, &ceF) != errors.As(errR, &ceR) {
					t.Fatalf("merge(%d,%d): conflict asymmetry: %v vs %v", a, b, errF, errR)
				}
				if errF != nil && !errors.As(errF, &ceF) {
					t.Fatalf("merge(%d,%d): %v", a, b, errF)
				}
				if ceF != nil {
					fk, rk := conflictKeys(fwd), conflictKeys(rev)
					if fmt.Sprint(fk) != fmt.Sprint(rk) {
						t.Fatalf("merge(%d,%d): conflict keys differ: %v vs %v", a, b, fk, rk)
					}
					// Policy mirror: ours one way == theirs the other way.
					po, err := d.Merge(fmt.Sprint(a), fmt.Sprint(b), MergeOurs, "")
					if err != nil {
						t.Fatal(err)
					}
					pt, err := d.Merge(fmt.Sprint(b), fmt.Sprint(a), MergeTheirs, "")
					if err != nil {
						t.Fatal(err)
					}
					if contentOf(t, d, po.Version) != contentOf(t, d, pt.Version) {
						t.Fatalf("merge(%d,%d): ours/theirs not mirror images", a, b)
					}
					continue
				}

				// Conflict-free: contents commute...
				if contentOf(t, d, fwd.Version) != contentOf(t, d, rev.Version) {
					t.Fatalf("merge(%d,%d): not commutative", a, b)
				}
				// ...and true merge commits equal the bitmap formula exactly.
				if !fwd.UpToDate && !fwd.FastForward {
					base, _ := cvd.RlistSet(fwd.Base)
					oursSet, _ := cvd.RlistSet(a)
					theirsSet, _ := cvd.RlistSet(b)
					merged, _ := cvd.RlistSet(fwd.Version)
					if !merged.Equal(formulaMembers(base, oursSet, theirsSet)) {
						t.Fatalf("merge(%d,%d): rlist deviates from the bitmap formula", a, b)
					}
					// The merge version re-merged with either parent is a
					// no-op (it contains both sides).
					again, err := d.Merge(fmt.Sprint(fwd.Version), fmt.Sprint(a), MergeFail, "")
					if err != nil || !again.UpToDate {
						t.Fatalf("re-merge of parent not up-to-date: %+v, %v", again, err)
					}
				}
			}
		})
	}
}

// TestMergePropertyKeyless runs the same DAG shapes without a primary key:
// merges must never conflict and must always equal the formula.
func TestMergePropertyKeyless(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewStore()
	d, err := s.Init("nk", []Column{{Name: "val", Type: KindString}}, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var vids []VersionID
	v1, err := d.Commit([]Row{{String("x")}, {String("y")}}, nil, "root")
	if err != nil {
		t.Fatal(err)
	}
	vids = append(vids, v1)
	for i := 0; i < 10; i++ {
		parent := vids[rng.Intn(len(vids))]
		rows, err := d.Checkout(parent)
		if err != nil {
			t.Fatal(err)
		}
		var next []Row
		for _, r := range rows {
			if rng.Intn(4) != 0 {
				next = append(next, r)
			}
		}
		next = append(next, Row{String(fmt.Sprintf("n%d", i))})
		v, err := d.Commit(next, []VersionID{parent}, fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		vids = append(vids, v)
	}
	cvd := d.CVD()
	for trial := 0; trial < 20; trial++ {
		a := vids[rng.Intn(len(vids))]
		b := vids[rng.Intn(len(vids))]
		res, err := d.Merge(fmt.Sprint(a), fmt.Sprint(b), MergeFail, "")
		if err != nil {
			t.Fatalf("keyless merge(%d,%d): %v", a, b, err)
		}
		if len(res.Conflicts) != 0 {
			t.Fatalf("keyless merge(%d,%d) conflicted", a, b)
		}
		if !res.UpToDate && !res.FastForward {
			base, _ := cvd.RlistSet(res.Base)
			oursSet, _ := cvd.RlistSet(a)
			theirsSet, _ := cvd.RlistSet(b)
			merged, _ := cvd.RlistSet(res.Version)
			if !merged.Equal(formulaMembers(base, oursSet, theirsSet)) {
				t.Fatalf("keyless merge(%d,%d) deviates from formula", a, b)
			}
		}
	}
}
