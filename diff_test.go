package orpheusdb

import "testing"

// Diff edge cases: identical versions, disjoint versions, diffs across a
// schema-evolved (AddColumn) boundary, and duplicate vids passed to
// Checkout. Run against every data model, since Diff's membership algebra
// pushes record fetches down to whichever model backs the CVD.

func diffModels() []ModelKind {
	return []ModelKind{
		TablePerVersion, CombinedTable, SplitByVlist, SplitByRlist, DeltaBased, PartitionedRlist,
	}
}

func TestDiffIdenticalVersions(t *testing.T) {
	for _, model := range diffModels() {
		t.Run(string(model), func(t *testing.T) {
			store := NewStore()
			ds, err := store.Init("d", []Column{{Name: "gene", Type: KindString}},
				InitOptions{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			rows := []Row{{String("a")}, {String("b")}}
			v1, err := ds.Commit(rows, nil, "base")
			if err != nil {
				t.Fatal(err)
			}
			// Same rows re-committed from v1 keep their rids, so both diff
			// directions are empty.
			v2, err := ds.Commit(rows, []VersionID{v1}, "same")
			if err != nil {
				t.Fatal(err)
			}
			onlyA, onlyB, err := ds.Diff(v1, v2)
			if err != nil {
				t.Fatal(err)
			}
			if len(onlyA) != 0 || len(onlyB) != 0 {
				t.Fatalf("identical versions diff: %d, %d rows", len(onlyA), len(onlyB))
			}
			// A version diffed against itself is empty too.
			onlyA, onlyB, err = ds.Diff(v1, v1)
			if err != nil {
				t.Fatal(err)
			}
			if len(onlyA) != 0 || len(onlyB) != 0 {
				t.Fatalf("self diff: %d, %d rows", len(onlyA), len(onlyB))
			}
		})
	}
}

func TestDiffDisjointVersions(t *testing.T) {
	for _, model := range diffModels() {
		t.Run(string(model), func(t *testing.T) {
			store := NewStore()
			ds, err := store.Init("d", []Column{{Name: "gene", Type: KindString}},
				InitOptions{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := ds.Commit([]Row{{String("a")}, {String("b")}}, nil, "left")
			if err != nil {
				t.Fatal(err)
			}
			// A root commit with entirely different rows shares no records.
			v2, err := ds.Commit([]Row{{String("x")}, {String("y")}, {String("z")}}, nil, "right")
			if err != nil {
				t.Fatal(err)
			}
			onlyA, onlyB, err := ds.Diff(v1, v2)
			if err != nil {
				t.Fatal(err)
			}
			if len(onlyA) != 2 || len(onlyB) != 3 {
				t.Fatalf("disjoint diff: %d, %d rows; want 2, 3", len(onlyA), len(onlyB))
			}
			sameGenes(t, "onlyA", onlyA, "a", "b")
			sameGenes(t, "onlyB", onlyB, "x", "y", "z")
		})
	}
}

func TestDiffAcrossSchemaEvolution(t *testing.T) {
	for _, model := range diffModels() {
		t.Run(string(model), func(t *testing.T) {
			store := NewStore()
			ds, err := store.Init("d", []Column{{Name: "gene", Type: KindString}},
				InitOptions{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := ds.Commit([]Row{{String("a")}, {String("b")}}, nil, "narrow")
			if err != nil {
				t.Fatal(err)
			}
			// v2 adds a column. Under the no-cross-version-diff rule a row
			// re-submitted in the widened shape hashes differently, so "a"
			// becomes a new record: the diff reports both sides in full.
			wide := []Column{
				{Name: "gene", Type: KindString},
				{Name: "score", Type: KindInt},
			}
			v2, err := ds.CommitWithSchema(wide, []Row{
				{String("a"), Null()},
				{String("c"), Int(9)},
			}, []VersionID{v1}, "widen")
			if err != nil {
				t.Fatal(err)
			}
			cols, onlyA, onlyB, err := ds.DiffWithColumns(v1, v2)
			if err != nil {
				t.Fatal(err)
			}
			if len(cols) != 2 {
				t.Fatalf("diff schema has %d columns, want 2", len(cols))
			}
			sameGenes(t, "onlyA", onlyA, "a", "b")
			sameGenes(t, "onlyB", onlyB, "a", "c")
			// Every returned row is padded to the evolved schema.
			for _, r := range append(append([]Row{}, onlyA...), onlyB...) {
				if len(r) != 2 {
					t.Fatalf("diff row has %d values, want 2", len(r))
				}
			}
		})
	}
}

func TestCheckoutDuplicateVids(t *testing.T) {
	for _, model := range diffModels() {
		t.Run(string(model), func(t *testing.T) {
			store := NewStore()
			ds, err := store.Init("d", []Column{{Name: "gene", Type: KindString}},
				InitOptions{Model: model, PrimaryKey: []string{"gene"}})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := ds.Commit([]Row{{String("a")}, {String("b")}}, nil, "base")
			if err != nil {
				t.Fatal(err)
			}
			// The same version listed twice must not duplicate records.
			rows, err := ds.Checkout(v1, v1, v1)
			if err != nil {
				t.Fatal(err)
			}
			sameGenes(t, "dup vids", rows, "a", "b")
		})
	}
}
