package orpheusdb

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// The concurrency smoke tests prove the locking layer added for the HTTP
// service at the library level: commits, checkouts, diffs, and SQL running
// in parallel across datasets on one Store, under -race.

func seedConcurrencyStore(t *testing.T, s *Store, datasets int) {
	t.Helper()
	cols := []Column{
		{Name: "id", Type: KindInt},
		{Name: "val", Type: KindString},
	}
	for i := 0; i < datasets; i++ {
		d, err := s.Init(fmt.Sprintf("c%d", i), cols, InitOptions{PrimaryKey: []string{"id"}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Commit([]Row{{Int(0), String("base")}}, nil, "base"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentStoreMixedWorkload(t *testing.T) {
	const (
		workers  = 24
		datasets = 4
		opsEach  = 20
	)
	s := NewStore()
	seedConcurrencyStore(t, s, datasets)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", w%datasets)
			d, err := s.Dataset(name)
			if err != nil {
				errs <- err
				return
			}
			for op := 0; op < opsEach; op++ {
				switch op % 5 {
				case 0:
					row := Row{Int(int64(w*1000 + op)), String("x")}
					if _, err := d.Commit([]Row{row}, []VersionID{1}, "w"); err != nil {
						errs <- fmt.Errorf("worker %d commit: %w", w, err)
						return
					}
				case 1:
					if _, err := d.Checkout(1); err != nil {
						errs <- fmt.Errorf("worker %d checkout: %w", w, err)
						return
					}
				case 2:
					if _, _, err := d.Diff(1, 1); err != nil {
						errs <- fmt.Errorf("worker %d diff: %w", w, err)
						return
					}
				case 3:
					q := fmt.Sprintf("SELECT count(*) FROM VERSION 1 OF CVD %s", name)
					if _, err := s.Run(q); err != nil {
						errs <- fmt.Errorf("worker %d query: %w", w, err)
						return
					}
				case 4:
					if _, err := d.Info(d.LatestVersion()); err != nil {
						errs <- fmt.Errorf("worker %d info: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Version ids stay dense per dataset: every successful commit got a
	// distinct id and none were lost.
	for i := 0; i < datasets; i++ {
		d, err := s.Dataset(fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if lat, n := d.LatestVersion(), len(d.Versions()); int(lat) != n {
			t.Errorf("c%d: latest version %d != count %d", i, lat, n)
		}
	}
}

// TestConcurrentCheckoutsAfterCommit targets the engine's lazy index
// settling: a commit leaves an unsorted index tail, and the first lookups
// afterwards come from many concurrent readers at once.
func TestConcurrentCheckoutsAfterCommit(t *testing.T) {
	s := NewStore()
	seedConcurrencyStore(t, s, 1)
	d, err := s.Dataset("c0")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		rows := make([]Row, 50)
		for i := range rows {
			rows[i] = Row{Int(int64(round*1000 + i + 1)), String("r")}
		}
		if _, err := d.Commit(rows, []VersionID{1}, "round"); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := d.Checkout(d.LatestVersion()); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestConcurrentSQLWrites proves raw-table DML through Run is serialized:
// INSERTs land under the exclusive save lock while versioned SELECTs share.
func TestConcurrentSQLWrites(t *testing.T) {
	s := NewStore()
	seedConcurrencyStore(t, s, 1)
	if _, err := s.Run("CREATE TABLE scratch (k integer, v string)"); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := fmt.Sprintf("INSERT INTO scratch VALUES (%d, 'x')", w*100+i)
				if _, err := s.Run(q); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if _, err := s.Run("SELECT count(*) FROM VERSION 1 OF CVD c0"); err != nil {
					t.Errorf("writer %d select: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res, err := s.Run("SELECT count(*) FROM scratch")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != writers*10 {
		t.Errorf("scratch has %d rows, want %d (lost inserts)", got, writers*10)
	}
}

// TestConcurrentRawTableSQL races raw SQL that names a dataset's backing
// table directly against commits and checkouts on that dataset: such
// statements must take the dataset locks, not just the save lock.
func TestConcurrentRawTableSQL(t *testing.T) {
	s := NewStore()
	seedConcurrencyStore(t, s, 1)
	d, err := s.Dataset("c0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch w % 3 {
				case 0:
					row := Row{Int(int64(w*1000 + i + 10)), String("z")}
					if _, err := d.Commit([]Row{row}, []VersionID{1}, "raw"); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				case 1:
					// c0_rl_data is the split-by-rlist backing table.
					if _, err := s.Run("SELECT count(*) FROM c0_rl_data"); err != nil {
						t.Errorf("raw select: %v", err)
						return
					}
				case 2:
					if _, err := d.Checkout(1); err != nil {
						t.Errorf("checkout: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentSystemTableAccess races catalog/user-table readers (List,
// Users, Dataset) against SQL DML that names those system tables directly.
func TestConcurrentSystemTableAccess(t *testing.T) {
	s := NewStore()
	seedConcurrencyStore(t, s, 1)
	if err := s.AddUser("u0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch w % 2 {
				case 0:
					q := fmt.Sprintf("INSERT INTO __orpheus_users VALUES ('w%d-%d', %d)", w, i, i)
					if _, err := s.Run(q); err != nil {
						t.Errorf("insert users: %v", err)
						return
					}
				case 1:
					s.Users()
					s.List()
					if _, err := s.Dataset("c0"); err != nil {
						t.Errorf("dataset: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentCommitsWithAsyncSave races the debounced saver against
// in-flight commits: the exclusive save lock must produce consistent
// snapshots without data races.
func TestConcurrentCommitsWithAsyncSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "async.odb")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSaveDelay(time.Millisecond)
	seedConcurrencyStore(t, s, 2)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d, err := s.Dataset(fmt.Sprintf("c%d", w%2))
			if err != nil {
				t.Error(err)
				return
			}
			for op := 0; op < 10; op++ {
				if _, err := d.Commit([]Row{{Int(int64(w*100 + op)), String("y")}}, []VersionID{1}, "w"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveErr(); err != nil {
		t.Fatalf("async save failed: %v", err)
	}

	// The snapshot on disk holds every committed version.
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 2; i++ {
		d, err := re.Dataset(fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += len(d.Versions()) - 1
	}
	if total != 80 {
		t.Errorf("reloaded store has %d committed versions, want 80", total)
	}
}

// TestSharedDatasetHandles verifies the registry returns one handle per CVD,
// so every caller shares the same lock.
func TestSharedDatasetHandles(t *testing.T) {
	s := NewStore()
	seedConcurrencyStore(t, s, 1)
	a, err := s.Dataset("c0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset("c0")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Dataset returned distinct handles for the same CVD")
	}
	if err := s.Drop("c0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dataset("c0"); err == nil {
		t.Error("Dataset succeeded after Drop")
	}
	// The stale handle is invalidated: even after a same-name re-Init,
	// operations through it fail instead of writing into the new dataset.
	if _, err := s.Init("c0", []Column{{Name: "id", Type: KindInt}}, InitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit([]Row{{Int(1)}}, nil, "stale"); err == nil {
		t.Error("stale handle Commit succeeded after Drop+Init")
	}
	if _, err := a.Checkout(1); err == nil {
		t.Error("stale handle Checkout succeeded after Drop+Init")
	}
	_ = b
}

// checkoutFingerprint reduces a version's contents to an order-independent
// string, safe to call from worker goroutines (no testing.T).
func checkoutFingerprint(d *Dataset, v VersionID) (string, error) {
	rows, err := d.Checkout(v)
	if err != nil {
		return "", err
	}
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprint(r)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n"), nil
}

// TestOptimizerMigrationUnderTraffic hammers the background optimizer:
// drift-triggered and manual migrations rewrite the partition layout while
// checkouts verify version contents byte-for-byte, commits extend the
// chain, merges fork and join branches, and cache flushes keep emptying
// the checkout cache. Under -race this exercises the optimizer's locking
// against the whole read/write surface at once.
func TestOptimizerMigrationUnderTraffic(t *testing.T) {
	s := NewStore()
	cols := []Column{
		{Name: "id", Type: KindInt},
		{Name: "val", Type: KindString},
	}
	d, err := s.Init("hot", cols, InitOptions{Model: PartitionedRlist, PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}

	// Growing chain: version i holds 4(i+1) rows, so the single seed
	// partition drifts and the optimizer keeps finding profitable splits.
	rowsFor := func(n, extra int, tag string) []Row {
		rows := make([]Row, 0, n+1)
		for i := 0; i < n; i++ {
			rows = append(rows, Row{Int(int64(i)), String("v")})
		}
		if extra >= 0 {
			rows = append(rows, Row{Int(int64(extra)), String(tag)})
		}
		return rows
	}
	const seeded = 24
	var vids []VersionID
	last := VersionID(0)
	for i := 0; i < seeded; i++ {
		var parents []VersionID
		if last != 0 {
			parents = []VersionID{last}
		}
		v, err := d.Commit(rowsFor(4*(i+1), -1, ""), parents, fmt.Sprintf("seed %d", i))
		if err != nil {
			t.Fatal(err)
		}
		vids = append(vids, v)
		last = v
	}
	want := make(map[VersionID]string, len(vids))
	for _, v := range vids {
		fp, err := checkoutFingerprint(d, v)
		if err != nil {
			t.Fatal(err)
		}
		want[v] = fp
	}

	o, err := s.StartPartitionOptimizer(PartitionOptimizerConfig{
		Mu:             1.05, // migrate on slight drift
		RecomputeEvery: 1,
		BatchRows:      64, // several critical sections per migration
		Interval:       2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	run := func(name string, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f(); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}()
	}

	for w := 0; w < 2; w++ {
		w := w
		run(fmt.Sprintf("checker%d", w), func() error {
			for i := 0; i < 60; i++ {
				v := vids[(i*7+w)%len(vids)]
				fp, err := checkoutFingerprint(d, v)
				if err != nil {
					return err
				}
				if fp != want[v] {
					return fmt.Errorf("version %d contents changed under migration", v)
				}
			}
			return nil
		})
	}
	run("committer", func() error {
		tip := vids[len(vids)-1]
		for i := 0; i < 20; i++ {
			rows := rowsFor(4*seeded, 10000+i, "w")
			v, err := d.Commit(rows, []VersionID{tip}, fmt.Sprintf("traffic %d", i))
			if err != nil {
				return err
			}
			tip = v
		}
		return nil
	})
	run("merger", func() error {
		base := vids[len(vids)/2]
		baseRows := 4 * (len(vids)/2 + 1)
		for i := 0; i < 8; i++ {
			ours, err := d.Commit(rowsFor(baseRows, 50000+i, "a"), []VersionID{base}, "ours")
			if err != nil {
				return err
			}
			theirs, err := d.Commit(rowsFor(baseRows, 60000+i, "b"), []VersionID{base}, "theirs")
			if err != nil {
				return err
			}
			bn := fmt.Sprintf("hammer-%d", i)
			if _, err := d.CreateBranch(bn, ours); err != nil {
				return err
			}
			if _, err := d.Merge(bn, fmt.Sprint(theirs), MergeFail, "join"); err != nil {
				return err
			}
		}
		return nil
	})
	run("flusher", func() error {
		for i := 0; i < 40; i++ {
			s.FlushCache()
			if _, err := d.Checkout(vids[(i*11)%len(vids)]); err != nil {
				return err
			}
		}
		return nil
	})
	run("trigger", func() error {
		for i := 0; i < 10; i++ {
			if _, err := o.Trigger("hot"); err != nil {
				return err
			}
		}
		return nil
	})

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	o.Stop()

	// Whatever layout the hammer left behind still serves every seeded
	// version byte-for-byte, and the store still accepts writes.
	for _, v := range vids {
		fp, err := checkoutFingerprint(d, v)
		if err != nil {
			t.Fatal(err)
		}
		if fp != want[v] {
			t.Errorf("version %d corrupted after hammer", v)
		}
	}
	if _, err := d.Commit(rowsFor(4, 777, "post"), []VersionID{vids[len(vids)-1]}, "post-hammer"); err != nil {
		t.Fatalf("store rejects writes after hammer: %v", err)
	}
	st, ok := d.PartitionStatus()
	if !ok || len(st.Partitions) < 2 {
		t.Fatalf("expected the optimizer to have split the layout (ok=%v, status %+v)", ok, st)
	}
}
