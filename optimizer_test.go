package orpheusdb

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"orpheusdb/internal/partition"
)

// chainStore builds a partitioned dataset whose versions form a growing
// chain: version i carries i*rowsPer accumulated rows, so the single initial
// partition's checkout cost drifts far above what LYRESPLIT can achieve.
func chainStore(t *testing.T, name string, versions, rowsPer int) (*Store, *Dataset, []VersionID) {
	t.Helper()
	store := NewStore()
	cols := []Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}
	ds, err := store.Init(name, cols, InitOptions{Model: PartitionedRlist, PrimaryKey: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	var parents []VersionID
	var vids []VersionID
	next := int64(0)
	for i := 0; i < versions; i++ {
		for j := 0; j < rowsPer; j++ {
			rows = append(rows, Row{Int(next), Int(next * 3)})
			next++
		}
		v, err := ds.Commit(append([]Row(nil), rows...), parents, fmt.Sprintf("step %d", i))
		if err != nil {
			t.Fatal(err)
		}
		parents = []VersionID{v}
		vids = append(vids, v)
	}
	return store, ds, vids
}

// sortedCheckout fingerprints one version's rows independent of fetch order.
func sortedCheckout(t *testing.T, ds *Dataset, v VersionID) []string {
	t.Helper()
	rows, err := ds.Checkout(v)
	if err != nil {
		t.Fatalf("checkout %d: %v", v, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func TestStartPartitionOptimizerValidatesConfig(t *testing.T) {
	store := NewStore()
	if _, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{RecomputeEvery: -1}); err == nil {
		t.Fatal("negative RecomputeEvery accepted")
	} else {
		var oe *partition.OptionsError
		if !errors.As(err, &oe) || oe.Field != "RecomputeEvery" {
			t.Fatalf("want OptionsError on RecomputeEvery, got %v", err)
		}
	}
	if _, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{GammaFactor: 0.5}); err == nil {
		t.Fatal("sub-1 gamma accepted")
	}
	o, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{}); err == nil {
		t.Fatal("second optimizer accepted while first is running")
	}
	o.Stop()
	if store.PartitionOptimizer() != nil {
		t.Fatal("Stop left the optimizer registered")
	}
	// Restartable after Stop.
	o2, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{Mu: MuDisabled})
	if err != nil {
		t.Fatal(err)
	}
	if got := o2.Config().Mu; got != 0 {
		t.Fatalf("MuDisabled should map to Mu=0, got %g", got)
	}
	o2.Stop()
}

// TestOptimizerDriftMigratesUnderTraffic drives commits through a store with
// the optimizer running and waits for the µ-drift trigger to repartition the
// dataset in the background; every version must checkout identically before
// and after, and the layout must end up multi-partition.
func TestOptimizerDriftMigratesUnderTraffic(t *testing.T) {
	store, ds, vids := chainStore(t, "drift", 40, 25)
	before := make(map[VersionID][]string, len(vids))
	for _, v := range vids {
		before[v] = sortedCheckout(t, ds, v)
	}
	st0, _ := ds.PartitionStatus()
	if len(st0.Partitions) != 1 {
		t.Fatalf("fixture should start single-partition, got %d", len(st0.Partitions))
	}

	o, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{
		Mu:             1, // migrate as soon as the layout is beatable at all
		RecomputeEvery: 1,
		BatchRows:      200,
		Interval:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	// One more commit wakes the optimizer; the sweep observes the whole
	// history and the drift check fires.
	if _, err := ds.Commit([]Row{{Int(99999), Int(0)}}, []VersionID{vids[len(vids)-1]}, "wake"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := o.Status("drift"); s.Migrations > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("optimizer never migrated: %+v", o.Status("drift"))
		}
		time.Sleep(5 * time.Millisecond)
	}

	st1, _ := ds.PartitionStatus()
	if len(st1.Partitions) < 2 {
		t.Fatalf("migration left %d partitions", len(st1.Partitions))
	}
	if st1.CheckoutCost >= st0.CheckoutCost {
		t.Fatalf("checkout cost did not improve: %g -> %g", st0.CheckoutCost, st1.CheckoutCost)
	}
	for _, v := range vids {
		after := sortedCheckout(t, ds, v)
		if len(after) != len(before[v]) {
			t.Fatalf("version %d: %d rows after migration, want %d", v, len(after), len(before[v]))
		}
		for i := range after {
			if after[i] != before[v][i] {
				t.Fatalf("version %d row %d diverged after migration", v, i)
			}
		}
	}
	status := o.Status("drift")
	if status.Batches == 0 || status.RowsMoved == 0 || status.LastReason != "drift" {
		t.Fatalf("optimizer status incomplete: %+v", status)
	}
	if n := store.DB().Stats().PartitionMigrations.Load(); n == 0 {
		t.Fatal("engine migration counter not bumped")
	}
}

// TestOptimizerManualTrigger repartitions on demand without any drift.
func TestOptimizerManualTrigger(t *testing.T) {
	store, ds, vids := chainStore(t, "manual", 20, 10)
	o, err := store.StartPartitionOptimizer(PartitionOptimizerConfig{
		Mu:       MuDisabled, // observe-only: only the manual path migrates
		Interval: time.Hour,  // no background sweeps interfere
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	rep, err := o.Trigger("manual")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 || rep.Partitions < 2 || rep.Reason != "manual" {
		t.Fatalf("report incomplete: %+v", rep)
	}
	for _, v := range vids {
		if _, err := ds.Checkout(v); err != nil {
			t.Fatalf("checkout %d after manual migration: %v", v, err)
		}
	}
	if _, err := o.Trigger("no-such-dataset"); err == nil {
		t.Fatal("trigger on unknown dataset accepted")
	}
}
