package orpheusdb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/merge"
	"orpheusdb/internal/vgraph"
	"orpheusdb/internal/wal"
)

// Branch & merge: the git-style named workflow over a dataset's version DAG.
// A branch is a named head version plus a persisted lineage bitmap; merging
// reconciles two divergent versions three-way against their lowest common
// ancestor using bitmap algebra over the versions' rlists, with record-level
// primary-key conflict detection and pluggable resolution. Every branch
// mutation and merge is WAL-logged inside its critical section like any
// other store mutation, and merge commits invalidate the checkout cache the
// same way plain commits do.

// Re-exported branch/merge identifiers.
type (
	// BranchInfo describes one named branch of a dataset.
	BranchInfo = core.BranchInfo
	// MergePolicy selects conflict resolution (fail/ours/theirs).
	MergePolicy = merge.Policy
	// MergeResult reports a merge: resulting version, base, conflict list.
	MergeResult = core.MergeResult
	// MergeConflict is one record-level conflict in a merge report.
	MergeConflict = merge.Conflict
	// MergeConflictError is the error PolicyFail returns when conflicts
	// exist; it carries the full MergeResult report.
	MergeConflictError = core.ConflictError
)

// Merge conflict-resolution policies, re-exported.
const (
	MergeFail   = merge.PolicyFail
	MergeOurs   = merge.PolicyOurs
	MergeTheirs = merge.PolicyTheirs
)

// ParseMergePolicy parses "fail", "ours", or "theirs".
func ParseMergePolicy(s string) (MergePolicy, error) { return merge.ParsePolicy(s) }

// CreateBranch registers a named branch pointing at version at (0 means the
// dataset's latest version). Branch names share reference slots with version
// ids, so purely numeric names are rejected.
func (d *Dataset) CreateBranch(name string, at VersionID) (*BranchInfo, error) {
	if err := d.store.writable(); err != nil {
		return nil, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	if at == 0 {
		if at = d.cvd.LatestVersion(); at == 0 {
			return nil, fmt.Errorf("orpheusdb: dataset %q has no versions to branch from", d.cvd.Name())
		}
	}
	b, err := d.cvd.CreateBranch(name, at)
	if err != nil {
		return nil, err
	}
	d.store.db.Stats().BranchCreates.Add(1)
	if err := d.store.logMutation(&wal.Record{
		Type:      wal.TypeBranchCreate,
		Dataset:   d.cvd.Name(),
		Branch:    name,
		Version:   int64(at),
		TimeNanos: b.CreatedAt.UnixNano(),
	}); err != nil {
		return b, err
	}
	d.store.ScheduleSave()
	return b, nil
}

// Branches lists the dataset's branches sorted by name. The BranchInfo
// values (including their lineage bitmaps) are shared and must be treated as
// immutable.
func (d *Dataset) Branches() []*BranchInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cvd.Branches()
}

// Branch returns one branch by name.
func (d *Dataset) Branch(name string) (*BranchInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	return d.cvd.Branch(name)
}

// DeleteBranch removes a branch; the versions it pointed at are untouched.
func (d *Dataset) DeleteBranch(name string) error {
	if err := d.store.writable(); err != nil {
		return err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	if err := d.cvd.DeleteBranch(name); err != nil {
		return err
	}
	if err := d.store.logMutation(&wal.Record{
		Type:    wal.TypeBranchDelete,
		Dataset: d.cvd.Name(),
		Branch:  name,
	}); err != nil {
		return err
	}
	d.store.ScheduleSave()
	return nil
}

// ResolveRef resolves a version reference — a decimal version id or a branch
// name (yielding the branch head).
func (d *Dataset) ResolveRef(ref string) (VersionID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return 0, err
	}
	return d.cvd.ResolveRef(ref)
}

// MergeBase returns the lowest common ancestor of two version references
// (ok=false when they share no ancestry).
func (d *Dataset) MergeBase(oursRef, theirsRef string) (VersionID, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.aliveLocked(); err != nil {
		return 0, false, err
	}
	ours, err := d.cvd.ResolveRef(oursRef)
	if err != nil {
		return 0, false, err
	}
	theirs, err := d.cvd.ResolveRef(theirsRef)
	if err != nil {
		return 0, false, err
	}
	return d.cvd.MergeBase(ours, theirs)
}

// Merge three-way-merges theirsRef into oursRef. Either reference may be a
// version id or a branch name; when oursRef names a branch, the branch head
// advances to the merge result (including fast-forwards). A true merge
// produces a new version with both sides as parents, whose record set is the
// bitmap formula base-kept ∪ ours-added ∪ theirs-added with deletions on
// either side honored; record-level conflicts (both sides changed the same
// primary key differently) are resolved per policy, or reported via a
// *MergeConflictError under MergeFail — the returned MergeResult carries the
// conflict report either way.
func (d *Dataset) Merge(oursRef, theirsRef string, policy MergePolicy, msg string) (*MergeResult, error) {
	return d.MergeCtx(context.Background(), oursRef, theirsRef, policy, msg)
}

// MergeCtx is Merge with trace propagation and latency observation: the LCA
// discovery, bitmap merge formula, merge commit, and WAL append contribute
// nested spans when ctx carries a trace, and the end-to-end latency lands in
// the merge histogram.
func (d *Dataset) MergeCtx(ctx context.Context, oursRef, theirsRef string, policy MergePolicy, msg string) (*MergeResult, error) {
	start := time.Now()
	defer func() { d.store.obs.mergeSeconds.ObserveDuration(time.Since(start)) }()
	// Trim up front so branch detection below sees exactly the form
	// ResolveRef resolves (a padded branch ref must still advance it).
	oursRef = strings.TrimSpace(oursRef)
	theirsRef = strings.TrimSpace(theirsRef)
	if err := d.store.writable(); err != nil {
		return nil, err
	}
	d.store.ioMu.RLock()
	defer d.store.ioMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	ours, err := d.cvd.ResolveRef(oursRef)
	if err != nil {
		return nil, err
	}
	theirs, err := d.cvd.ResolveRef(theirsRef)
	if err != nil {
		return nil, err
	}
	oursBranch := ""
	if b, berr := d.cvd.Branch(oursRef); berr == nil {
		oursBranch = b.Name
	}
	stats := d.store.db.Stats()
	stats.Merges.Add(1)
	res, err := d.cvd.MergeCtx(ctx, ours, theirs, core.MergeOptions{Policy: policy, Message: msg})
	if res != nil {
		stats.MergeConflicts.Add(int64(len(res.Conflicts)))
	}
	if err != nil {
		return res, err // conflict-refused or failed merges mutate nothing
	}
	switch {
	case res.UpToDate:
		return res, nil
	case res.FastForward:
		if oursBranch == "" {
			return res, nil // nothing to advance; no state changed
		}
		if _, err := d.cvd.AdvanceBranch(oursBranch, res.Version); err != nil {
			return res, err
		}
		if err := d.store.logMutationCtx(ctx, &wal.Record{
			Type:    wal.TypeBranchAdvance,
			Dataset: d.cvd.Name(),
			Branch:  oursBranch,
			Version: int64(res.Version),
		}); err != nil {
			return res, err
		}
		d.store.ScheduleSave()
		return res, nil
	}
	// A merge commit extends the version graph: readers must not see
	// pre-merge cached materializations of the all-versions view, and the
	// dataset's generation token must advance. Invalidate before the WAL
	// append, exactly like Commit.
	d.store.cache.InvalidateDataset(d.cvd.Name())
	if oursBranch != "" {
		if _, err := d.cvd.AdvanceBranch(oursBranch, res.Version); err != nil {
			return res, err
		}
	}
	rec := &wal.Record{
		Type:    wal.TypeMerge,
		Dataset: d.cvd.Name(),
		Branch:  oursBranch,
		Msg:     msg,
		Policy:  policy.String(),
		Base:    int64(res.Base),
		Parents: []int64{int64(ours), int64(theirs)},
		Version: int64(res.Version),
	}
	if info, ierr := d.cvd.Info(res.Version); ierr == nil {
		rec.TimeNanos = info.CommitTime.UnixNano()
	}
	if set, serr := d.cvd.RlistSet(res.Version); serr == nil {
		rec.Members = set
	}
	if err := d.store.logMutationCtx(ctx, rec); err != nil {
		return res, err
	}
	d.store.ScheduleSave()
	d.store.wakeOptimizer()
	return res, nil
}

// replayMerge re-runs a logged merge with the recorded timestamp and policy,
// verifying the replay reconstructed the acknowledged version id and record
// set, then re-advances the branch head the original merge moved.
func (s *Store) replayMerge(rec *wal.Record) error {
	d, err := s.dataset(rec.Dataset)
	if err != nil {
		return err
	}
	if len(rec.Parents) != 2 {
		return fmt.Errorf("merge record has %d parents, want 2", len(rec.Parents))
	}
	policy, err := merge.ParsePolicy(rec.Policy)
	if err != nil {
		return err
	}
	cvd := d.cvd
	at := time.Unix(0, rec.TimeNanos)
	restore := cvd.Clock
	cvd.Clock = func() time.Time { return at }
	defer func() { cvd.Clock = restore }()

	res, err := cvd.Merge(vgraph.VersionID(rec.Parents[0]), vgraph.VersionID(rec.Parents[1]),
		core.MergeOptions{Policy: policy, Message: rec.Msg})
	if err != nil {
		return err
	}
	if rec.Version != 0 && int64(res.Version) != rec.Version {
		return fmt.Errorf("merge replay diverged: produced version %d, log says %d", res.Version, rec.Version)
	}
	if rec.Members != nil {
		set, err := cvd.RlistSet(res.Version)
		if err != nil {
			return err
		}
		if !set.Equal(rec.Members) {
			return fmt.Errorf("merge replay diverged: version %d rebuilt %d records, log says %d",
				res.Version, set.Cardinality(), rec.Members.Cardinality())
		}
	}
	if rec.Branch != "" {
		if _, err := cvd.AdvanceBranch(rec.Branch, res.Version); err != nil {
			return err
		}
	}
	return nil
}
