// Curation: a CUR-workload style scenario (Section 5.1) with branches merging
// back into a canonical dataset, plus the schema evolution of Section 3.3:
// new attributes appear on branches and a type widens from integer to
// decimal, all under the single-pool method.
package main

import (
	"fmt"
	"log"

	orpheusdb "orpheusdb"
)

func main() {
	store := orpheusdb.NewStore()
	if err := store.CreateUser("alice"); err != nil {
		log.Fatal(err)
	}

	cols := []orpheusdb.Column{
		{Name: "gene", Type: orpheusdb.KindString},
		{Name: "annotation", Type: orpheusdb.KindString},
		{Name: "confidence", Type: orpheusdb.KindInt},
	}
	ds, err := store.Init("annotations", cols, orpheusdb.InitOptions{PrimaryKey: []string{"gene"}})
	if err != nil {
		log.Fatal(err)
	}

	v1, err := ds.Commit([]orpheusdb.Row{
		{orpheusdb.String("brca1"), orpheusdb.String("dna repair"), orpheusdb.Int(90)},
		{orpheusdb.String("tp53"), orpheusdb.String("tumor suppressor"), orpheusdb.Int(95)},
		{orpheusdb.String("egfr"), orpheusdb.String("growth signaling"), orpheusdb.Int(80)},
	}, nil, "canonical import")
	if err != nil {
		log.Fatal(err)
	}

	// Bob branches through the staging area: checkout to a table, edit via
	// SQL, commit back. The access controller keeps his table private.
	if err := store.CreateUser("bob"); err != nil {
		log.Fatal(err)
	}
	if err := ds.CheckoutToTable("bob_work", v1); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Run("UPDATE bob_work SET confidence = 99 WHERE gene = 'tp53'"); err != nil {
		log.Fatal(err)
	}
	if err := store.SetUser("alice"); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.CommitTable("bob_work", "alice steals bob's table"); err != nil {
		fmt.Println("access controller:", err)
	}
	if err := store.SetUser("bob"); err != nil {
		log.Fatal(err)
	}
	v2, err := ds.CommitTable("bob_work", "bob: bump tp53 confidence")
	if err != nil {
		log.Fatal(err)
	}

	// Carol's branch adds an attribute (pathway) — schema evolution: old
	// records read NULL for it.
	carolCols := append(append([]orpheusdb.Column{}, cols...),
		orpheusdb.Column{Name: "pathway", Type: orpheusdb.KindString})
	v3, err := ds.CommitWithSchema(carolCols, []orpheusdb.Row{
		{orpheusdb.String("brca1"), orpheusdb.String("dna repair"), orpheusdb.Int(90), orpheusdb.String("hr")},
		{orpheusdb.String("tp53"), orpheusdb.String("tumor suppressor"), orpheusdb.Int(95), orpheusdb.String("apoptosis")},
		{orpheusdb.String("egfr"), orpheusdb.String("growth signaling"), orpheusdb.Int(80), orpheusdb.String("mapk")},
	}, []orpheusdb.VersionID{v1}, "carol: add pathway column")
	if err != nil {
		log.Fatal(err)
	}

	// A later commit widens confidence from integer to decimal — the
	// attribute table gains a new entry and the pool column widens.
	decCols := []orpheusdb.Column{
		{Name: "gene", Type: orpheusdb.KindString},
		{Name: "annotation", Type: orpheusdb.KindString},
		{Name: "confidence", Type: orpheusdb.KindFloat},
		{Name: "pathway", Type: orpheusdb.KindString},
	}
	v4, err := ds.CommitWithSchema(decCols, []orpheusdb.Row{
		{orpheusdb.String("brca1"), orpheusdb.String("dna repair"), orpheusdb.Float(0.93), orpheusdb.String("hr")},
		{orpheusdb.String("tp53"), orpheusdb.String("tumor suppressor"), orpheusdb.Float(0.99), orpheusdb.String("apoptosis")},
	}, []orpheusdb.VersionID{v3}, "rescale confidence to [0,1]")
	if err != nil {
		log.Fatal(err)
	}

	// Merge bob's and carol's lines back into the canonical dataset. The
	// merged version carries the union of attributes (Section 3.3).
	merged, err := ds.Checkout(v2, v4)
	if err != nil {
		log.Fatal(err)
	}
	v5, err := ds.Commit(merged, []orpheusdb.VersionID{v2, v4}, "curation round: merge bob + carol")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("version DAG: v1 -> {v2(bob), v3(carol) -> v4} -> v5 (merge)\n")
	for _, v := range ds.Versions() {
		info, _ := ds.Info(v)
		fmt.Printf("  v%d: %d records, parents %v, %q\n", v, info.NumRecords, info.Parents, info.Message)
	}

	// The current pool schema shows the widened confidence column.
	fmt.Println("pool schema after evolution:")
	for _, c := range ds.Columns() {
		fmt.Printf("  %-12s %s\n", c.Name, c.Type)
	}

	rows, err := ds.Checkout(v5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d contents (%d rows):\n", v5, len(rows))
	for _, r := range rows {
		fmt.Printf("  %v\n", r)
	}
}
