// Quickstart: create a versioned dataset, branch it, query across versions.
package main

import (
	"fmt"
	"log"

	orpheusdb "orpheusdb"
)

func main() {
	store := orpheusdb.NewStore()

	// A CVD is a relation plus all of its versions. The primary key holds
	// within each version, not across versions.
	cols := []orpheusdb.Column{
		{Name: "city", Type: orpheusdb.KindString},
		{Name: "population", Type: orpheusdb.KindInt},
	}
	ds, err := store.Init("cities", cols, orpheusdb.InitOptions{PrimaryKey: []string{"city"}})
	if err != nil {
		log.Fatal(err)
	}

	// v1: initial import.
	v1, err := ds.Commit([]orpheusdb.Row{
		{orpheusdb.String("springfield"), orpheusdb.Int(30000)},
		{orpheusdb.String("shelbyville"), orpheusdb.Int(25000)},
	}, nil, "initial import")
	if err != nil {
		log.Fatal(err)
	}

	// Two analysts branch from v1 and commit independently.
	v2, err := ds.Commit([]orpheusdb.Row{
		{orpheusdb.String("springfield"), orpheusdb.Int(30500)}, // corrected
		{orpheusdb.String("shelbyville"), orpheusdb.Int(25000)},
	}, []orpheusdb.VersionID{v1}, "fix springfield census")
	if err != nil {
		log.Fatal(err)
	}
	v3, err := ds.Commit([]orpheusdb.Row{
		{orpheusdb.String("springfield"), orpheusdb.Int(30000)},
		{orpheusdb.String("shelbyville"), orpheusdb.Int(25000)},
		{orpheusdb.String("ogdenville"), orpheusdb.Int(12000)}, // added
	}, []orpheusdb.VersionID{v1}, "add ogdenville")
	if err != nil {
		log.Fatal(err)
	}

	// Merge: records are taken in precedence order; the primary key
	// resolves conflicts (v2's springfield wins).
	merged, err := ds.Checkout(v2, v3)
	if err != nil {
		log.Fatal(err)
	}
	v4, err := ds.Commit(merged, []orpheusdb.VersionID{v2, v3}, "merge census fix + ogdenville")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("version graph: v1 -> {v2, v3} -> v4 (merge), v4 has %d rows\n", len(merged))

	// SQL on one version without materializing it by hand.
	res, err := store.Run("SELECT city, population FROM VERSION 4 OF CVD cities ORDER BY population DESC")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %d\n", r[0].S, r[1].I)
	}

	// Aggregate across every version at once.
	res, err = store.Run("SELECT vid, count(*) AS cities, sum(population) AS total FROM CVD cities GROUP BY vid ORDER BY vid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-version totals:")
	for _, r := range res.Rows {
		fmt.Printf("  v%d: %d cities, %d people\n", r[0].I, r[1].I, r[2].I)
	}

	// Standard diff between the two branches.
	onlyA, onlyB, err := ds.Diff(v2, v3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diff v2 vs v3: %d records only in v2, %d only in v3\n", len(onlyA), len(onlyB))
	_ = v4
}
