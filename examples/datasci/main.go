// Datasci: an SCI-workload style pipeline (Section 5.1) — a data science team
// branches an evolving dataset for isolated analysis, hundreds of versions
// accumulate, checkouts slow down, and the partition optimizer (LYRESPLIT)
// restores them.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	orpheusdb "orpheusdb"
)

func main() {
	store := orpheusdb.NewStore()
	cols := []orpheusdb.Column{
		{Name: "sample_id", Type: orpheusdb.KindInt},
		{Name: "feature_a", Type: orpheusdb.KindInt},
		{Name: "feature_b", Type: orpheusdb.KindInt},
		{Name: "label", Type: orpheusdb.KindInt},
	}
	// The partitioned split-by-rlist model lets `optimize` reorganize data.
	ds, err := store.Init("samples", cols, orpheusdb.InitOptions{
		Model:      orpheusdb.PartitionedRlist,
		PrimaryKey: []string{"sample_id"},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	mkRow := func(id int64) orpheusdb.Row {
		return orpheusdb.Row{
			orpheusdb.Int(id),
			orpheusdb.Int(rng.Int63n(1000)),
			orpheusdb.Int(rng.Int63n(1000)),
			orpheusdb.Int(rng.Int63n(2)),
		}
	}

	// Mainline: an evolving dataset.
	var rows []orpheusdb.Row
	var nextID int64
	for i := 0; i < 200; i++ {
		rows = append(rows, mkRow(nextID))
		nextID++
	}
	mainline, err := ds.Commit(rows, nil, "raw samples")
	if err != nil {
		log.Fatal(err)
	}

	// Scientists branch from the mainline, transform their copy, and
	// commit; the mainline keeps growing.
	heads := []orpheusdb.VersionID{mainline}
	for round := 0; round < 60; round++ {
		// Extend the mainline with new samples and some relabeling.
		for i := 0; i < 20; i++ {
			rows = append(rows, mkRow(nextID))
			nextID++
		}
		idx := rng.Intn(len(rows))
		edited := append(orpheusdb.Row(nil), rows[idx]...)
		edited[3] = orpheusdb.Int(1 - edited[3].I)
		rows[idx] = edited
		v, err := ds.Commit(rows, []orpheusdb.VersionID{heads[0]}, fmt.Sprintf("mainline round %d", round))
		if err != nil {
			log.Fatal(err)
		}
		heads[0] = v

		// Occasionally fork an analysis branch: filter + transform.
		if round%6 == 0 {
			var branch []orpheusdb.Row
			for _, r := range rows {
				if r[1].I < 500 {
					nr := append(orpheusdb.Row(nil), r...)
					nr[2] = orpheusdb.Int(nr[2].I * 2)
					branch = append(branch, nr)
				}
			}
			bv, err := ds.Commit(branch, []orpheusdb.VersionID{heads[0]}, fmt.Sprintf("analysis fork %d", round))
			if err != nil {
				log.Fatal(err)
			}
			heads = append(heads, bv)
		}
	}
	fmt.Printf("committed %d versions, latest mainline v%d\n", len(ds.Versions()), heads[0])

	// Checkout latency before partitioning: every version lives in one
	// partition, so a checkout scans everything.
	timeCheckout := func(label string) {
		start := time.Now()
		n := 0
		for _, v := range []orpheusdb.VersionID{heads[0], heads[len(heads)-1], 1} {
			rows, err := ds.Checkout(v)
			if err != nil {
				log.Fatal(err)
			}
			n += len(rows)
		}
		fmt.Printf("%s: 3 checkouts (%d rows) in %v\n", label, n, time.Since(start))
	}
	timeCheckout("before optimize")

	// Run LYRESPLIT under a 2x storage budget (the `optimize` command).
	res, err := ds.Optimize(2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimize: delta=%.3f partitions=%d estCavg=%.0f records, solve=%v migrate=%v\n",
		res.Delta, res.Partitions, res.EstCheckout, res.SolveTime, res.MigrationTime)

	timeCheckout("after optimize")

	// New commits keep flowing; online maintenance places them without a
	// full reorganization.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			rows = append(rows, mkRow(nextID))
			nextID++
		}
		v, err := ds.Commit(rows, []orpheusdb.VersionID{heads[0]}, "post-optimize commit")
		if err != nil {
			log.Fatal(err)
		}
		heads[0] = v
	}
	fmt.Printf("after 10 more commits the dataset has %d versions; checkouts stay partition-local\n",
		len(ds.Versions()))
	timeCheckout("after online commits")
}
