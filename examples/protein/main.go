// Protein: the paper's motivating scenario (Section 1) — biologists
// collaboratively curating a protein-protein interaction dataset, checking
// out versions, editing locally, committing into a branched version network,
// then querying across versions for global statistics and versions with
// specific properties.
package main

import (
	"fmt"
	"log"
	"math/rand"

	orpheusdb "orpheusdb"
)

func main() {
	store := orpheusdb.NewStore()
	cols := []orpheusdb.Column{
		{Name: "protein1", Type: orpheusdb.KindString},
		{Name: "protein2", Type: orpheusdb.KindString},
		{Name: "neighborhood", Type: orpheusdb.KindInt},
		{Name: "cooccurrence", Type: orpheusdb.KindInt},
		{Name: "coexpression", Type: orpheusdb.KindInt},
	}
	ds, err := store.Init("interactions", cols, orpheusdb.InitOptions{
		PrimaryKey: []string{"protein1", "protein2"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Initial STRING-style import.
	rng := rand.New(rand.NewSource(7))
	base := make([]orpheusdb.Row, 0, 200)
	for i := 0; i < 200; i++ {
		base = append(base, orpheusdb.Row{
			orpheusdb.String(fmt.Sprintf("ENSP%06d", i)),
			orpheusdb.String(fmt.Sprintf("ENSP%06d", 1000+rng.Intn(500))),
			orpheusdb.Int(rng.Int63n(500)),
			orpheusdb.Int(rng.Int63n(300)),
			orpheusdb.Int(rng.Int63n(1000)),
		})
	}
	v1, err := ds.Commit(base, nil, "import STRING interactions")
	if err != nil {
		log.Fatal(err)
	}

	// Lab A rescores coexpression on a branch.
	labA := append([]orpheusdb.Row(nil), base...)
	for i := range labA {
		if labA[i][4].I < 100 {
			row := append(orpheusdb.Row(nil), labA[i]...)
			row[4] = orpheusdb.Int(row[4].I + 83)
			labA[i] = row
		}
	}
	v2, err := ds.Commit(labA, []orpheusdb.VersionID{v1}, "lab A: coexpression rescore")
	if err != nil {
		log.Fatal(err)
	}

	// Lab B performs a bulk delete of low-confidence interactions.
	var labB []orpheusdb.Row
	for _, r := range base {
		if r[3].I >= 50 { // keep cooccurrence >= 50
			labB = append(labB, r)
		}
	}
	v3, err := ds.Commit(labB, []orpheusdb.VersionID{v1}, "lab B: drop low-confidence pairs")
	if err != nil {
		log.Fatal(err)
	}

	// Merged curation round: lab A's rescoring wins conflicts.
	merged, err := ds.Checkout(v2, v3)
	if err != nil {
		log.Fatal(err)
	}
	v4, err := ds.Commit(merged, []orpheusdb.VersionID{v2, v3}, "curation round 1")
	if err != nil {
		log.Fatal(err)
	}

	// Global statistic per version: count of high-coexpression tuples
	// (the paper's "aggregate count with confidence > 0.9, per version").
	res, err := store.Run("SELECT vid, count(*) AS strong FROM CVD interactions WHERE coexpression > 900 GROUP BY vid ORDER BY vid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strong interactions per version:")
	for _, r := range res.Rows {
		fmt.Printf("  v%d: %d\n", r[0].I, r[1].I)
	}

	// Versions with a specific record (here: any interaction of ENSP000042).
	res, err = store.Run("SELECT DISTINCT vid FROM CVD interactions WHERE protein1 = 'ENSP000042' ORDER BY vid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("versions containing ENSP000042 interactions: %d of %d\n",
		len(res.Rows), len(ds.Versions()))

	// Versions with "a bulk delete": more than 50 records removed relative
	// to a parent — a version-graph shortcut query.
	bulkDeletes, err := ds.SearchVersions(func(info *orpheusdb.VersionInfo) bool {
		for _, p := range info.Parents {
			pi, err := ds.Info(p)
			if err != nil {
				continue
			}
			if pi.NumRecords-info.NumRecords > 20 {
				return true
			}
		}
		return false
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("versions with a bulk delete: %v\n", bulkDeletes)

	// Provenance walk.
	anc, err := ds.Ancestors(v4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d derives from versions %v\n", v4, anc)

	// Cross-version join: which pairs changed coexpression between v1 and v4?
	res, err = store.Run(`
		SELECT a.protein1, a.protein2, a.coexpression, b.coexpression
		FROM VERSION 1 OF CVD interactions AS a
		JOIN VERSION 4 OF CVD interactions AS b
		ON a.protein1 = b.protein1 AND a.protein2 = b.protein2
		WHERE a.coexpression <> b.coexpression
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample of rescored pairs (v1 -> v4): %d shown\n", len(res.Rows))
	for _, r := range res.Rows {
		fmt.Printf("  %s-%s: %d -> %d\n", r[0].S, r[1].S, r[2].I, r[3].I)
	}
}
