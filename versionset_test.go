package orpheusdb

import (
	"sort"
	"testing"
)

// threeVersionStore builds a dataset with three versions sharing records:
//
//	v1: brca1=10, tp53=20
//	v2: brca1=15, tp53=20, egfr=5    (tp53 shared with v1)
//	v3: tp53=20, myc=7               (tp53 shared with v1/v2)
func threeVersionStore(t *testing.T) (*Store, *Dataset, [3]VersionID) {
	t.Helper()
	store, ds, v1, v2 := geneStore(t)
	v3, err := ds.Commit([]Row{
		{String("tp53"), Int(20)},
		{String("myc"), Int(7)},
	}, []VersionID{v1}, "branch")
	if err != nil {
		t.Fatal(err)
	}
	return store, ds, [3]VersionID{v1, v2, v3}
}

func rowGenes(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].S
	}
	sort.Strings(out)
	return out
}

func sameGenes(t *testing.T, name string, rows []Row, want ...string) {
	t.Helper()
	got := rowGenes(rows)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s: genes %v, want %v", name, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: genes %v, want %v", name, got, want)
		}
	}
}

func TestMultiVersionCheckoutAPI(t *testing.T) {
	_, ds, v := threeVersionStore(t)

	rows, err := ds.MultiVersionCheckout([]VersionID{v[1], v[2]}, []SetOp{SetIntersect})
	if err != nil {
		t.Fatal(err)
	}
	sameGenes(t, "v2∩v3", rows, "tp53")

	rows, err = ds.MultiVersionCheckout([]VersionID{v[1], v[2]}, []SetOp{SetUnion})
	if err != nil {
		t.Fatal(err)
	}
	sameGenes(t, "v2∪v3", rows, "brca1", "tp53", "egfr", "myc")

	rows, err = ds.MultiVersionCheckout([]VersionID{v[1], v[2]}, []SetOp{SetExcept})
	if err != nil {
		t.Fatal(err)
	}
	sameGenes(t, "v2∖v3", rows, "brca1", "egfr")

	// Left-associative chain: (v2 ∪ v3) ∖ v1 = records not in v1.
	rows, err = ds.MultiVersionCheckout(
		[]VersionID{v[1], v[2], v[0]}, []SetOp{SetUnion, SetExcept})
	if err != nil {
		t.Fatal(err)
	}
	sameGenes(t, "(v2∪v3)∖v1", rows, "brca1", "egfr", "myc")

	// Single version degenerates to a membership checkout.
	rows, err = ds.MultiVersionCheckout([]VersionID{v[2]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameGenes(t, "v3", rows, "tp53", "myc")

	// Arity and existence errors.
	if _, err := ds.MultiVersionCheckout([]VersionID{v[0], v[1]}, nil); err == nil {
		t.Fatal("missing operator accepted")
	}
	if _, err := ds.MultiVersionCheckout([]VersionID{v[0], 99}, []SetOp{SetIntersect}); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ds.MultiVersionCheckout(nil, nil); err == nil {
		t.Fatal("empty version list accepted")
	}
}

func TestMultiVersionCheckoutAllModels(t *testing.T) {
	for _, model := range []ModelKind{
		TablePerVersion, CombinedTable, SplitByVlist, SplitByRlist, DeltaBased, PartitionedRlist,
	} {
		t.Run(string(model), func(t *testing.T) {
			store := NewStore()
			cols := []Column{{Name: "gene", Type: KindString}, {Name: "score", Type: KindInt}}
			ds, err := store.Init("g", cols, InitOptions{Model: model, PrimaryKey: []string{"gene"}})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := ds.Commit([]Row{{String("a"), Int(1)}, {String("b"), Int(2)}}, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			v2, err := ds.Commit([]Row{{String("b"), Int(2)}, {String("c"), Int(3)}}, []VersionID{v1}, "")
			if err != nil {
				t.Fatal(err)
			}
			rows, err := ds.MultiVersionCheckout([]VersionID{v1, v2}, []SetOp{SetIntersect})
			if err != nil {
				t.Fatal(err)
			}
			sameGenes(t, "v1∩v2", rows, "b")
			rows, err = ds.MultiVersionCheckout([]VersionID{v1, v2}, []SetOp{SetUnion})
			if err != nil {
				t.Fatal(err)
			}
			sameGenes(t, "v1∪v2", rows, "a", "b", "c")
		})
	}
}

func TestRunMultiVersionSQL(t *testing.T) {
	store, _, _ := threeVersionStore(t)

	r, err := store.Run("SELECT count(*) FROM VERSION 2 INTERSECT 3 OF CVD genes")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Fatalf("intersect count = %d, want 1", r.Rows[0][0].I)
	}

	r, err = store.Run("SELECT gene FROM VERSION 2 UNION 3 OF CVD genes ORDER BY gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 || r.Rows[0][0].S != "brca1" {
		t.Fatalf("union rows = %v", r.Rows)
	}

	r, err = store.Run("SELECT gene FROM VERSION 2 EXCEPT 3 OF CVD genes ORDER BY gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].S != "brca1" || r.Rows[1][0].S != "egfr" {
		t.Fatalf("except rows = %v", r.Rows)
	}

	// Chains compose left-associatively in SQL too.
	r, err = store.Run("SELECT count(*) FROM VERSION 2 UNION 3 EXCEPT 1 OF CVD genes")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3 {
		t.Fatalf("chain count = %d, want 3", r.Rows[0][0].I)
	}

	// Aliases still work, and temp tables are cleaned up.
	if _, err := store.Run("SELECT t.gene FROM VERSION 2 INTERSECT 3 OF CVD genes AS t"); err != nil {
		t.Fatal(err)
	}
	for _, n := range store.DB().TableNames() {
		if len(n) > 13 && n[:13] == "__orpheus_tmp" {
			t.Fatalf("leftover temp table %s", n)
		}
	}

	// Unknown versions in the chain are rejected.
	if _, err := store.Run("SELECT * FROM VERSION 2 INTERSECT 9 OF CVD genes"); err == nil {
		t.Fatal("unknown version in chain accepted")
	}
}

func TestStorageBreakdown(t *testing.T) {
	_, ds, _ := threeVersionStore(t)
	b := ds.StorageBreakdown()
	if b.TotalBytes <= 0 {
		t.Fatal("zero total")
	}
	if b.MembershipBytes <= 0 || b.MembershipBytes >= b.TotalBytes {
		t.Fatalf("membership bytes = %d of %d", b.MembershipBytes, b.TotalBytes)
	}
	if b.DataBytes+b.MembershipBytes != b.TotalBytes {
		t.Fatalf("breakdown does not sum: %d + %d != %d", b.DataBytes, b.MembershipBytes, b.TotalBytes)
	}
	if b.SystemMembershipBytes <= 0 {
		t.Fatal("system membership missing")
	}
}
